#include "lang/codegen.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "automata/optimizer.h"
#include "automata/positional.h"
#include "lang/parser.h"
#include "lang/typecheck.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"
#include "support/strings.h"

namespace rapid::lang {

using automata::Automaton;
using automata::CharSet;
using automata::CounterMode;
using automata::ElementId;
using automata::GateOp;
using automata::kNoElement;
using automata::Port;
using automata::StartKind;

namespace {

/** Report codes of the design's reporting elements. */
std::set<std::string>
reportCodes(const Automaton &automaton)
{
    std::set<std::string> codes;
    for (const auto &element : automaton.elements()) {
        if (element.report)
            codes.insert(element.reportCode);
    }
    return codes;
}

/**
 * Emit-side guard on the optimizer: it may deduplicate reporters and
 * prune ones that can never fire, but must never invent or rewrite a
 * report code the program didn't emit.
 */
void
checkReportCodesPreserved(const std::set<std::string> &before,
                          const Automaton &automaton)
{
    for (const std::string &code : reportCodes(automaton)) {
        internalCheck(before.count(code) != 0,
                      "optimizer introduced report code");
    }
}

/**
 * A normalized runtime ("automata") expression after compile-time
 * folding: the comparison structure that actually reaches the device.
 */
struct ATree {
    enum class Kind {
        /** Consume one symbol of the set. */
        Match,
        /** Children in sequence (&& is concatenation, Fig. 7). */
        Seq,
        /** Children in parallel (||). */
        Alt,
        /** Trivially true; consumes nothing. */
        Epsilon,
        /** Trivially false; kills the thread. */
        Fail,
    };

    Kind kind = Kind::Epsilon;
    CharSet set;
    std::vector<ATree> children;

    /** Symbols consumed; -1 when branches disagree. */
    int
    length() const
    {
        switch (kind) {
          case Kind::Match:
            return 1;
          case Kind::Epsilon:
          case Kind::Fail:
            return 0;
          case Kind::Seq: {
            int total = 0;
            for (const ATree &child : children) {
                int len = child.length();
                if (len < 0)
                    return -1;
                total += len;
            }
            return total;
          }
          case Kind::Alt: {
            int common = -2;
            for (const ATree &child : children) {
                int len = child.length();
                if (len < 0)
                    return -1;
                if (common == -2)
                    common = len;
                else if (common != len)
                    return -1;
            }
            return common == -2 ? 0 : common;
          }
        }
        return -1;
    }

    static ATree
    match(const CharSet &set)
    {
        ATree t;
        t.kind = Kind::Match;
        t.set = set;
        return t;
    }

    static ATree
    epsilon()
    {
        return ATree{};
    }

    static ATree
    fail()
    {
        ATree t;
        t.kind = Kind::Fail;
        return t;
    }
};

/** The compiled form of an automata expression (a fragment). */
struct Chain {
    /** STEs to enable from the predecessor. */
    std::vector<ElementId> entries;
    /** Elements whose activation means the expression matched. */
    std::vector<ElementId> exits;
    /** The expression can also match consuming nothing. */
    bool passthrough = false;
    /** The expression can never match. */
    bool fail = false;
};

/**
 * Where control currently sits during staged evaluation.
 *
 * `start` means control is at the beginning of a parallel branch and no
 * symbol has been consumed: the next attached STEs either receive the
 * implicit START_OF_INPUT window guard (guard == true) or are marked
 * with `startKind` directly (a folded top-level whenever).  `elems`
 * lists already-created elements control may also be sitting on.
 */
struct Frontier {
    bool start = false;
    StartKind startKind = StartKind::AllInput;
    bool guard = false;
    std::vector<ElementId> elems;
    /** Data symbols consumed since the record start; -1 = unknown. */
    int64_t consumed = 0;

    bool dead() const { return !start && elems.empty(); }

    static Frontier
    deadFrontier()
    {
        Frontier f;
        f.consumed = -1;
        return f;
    }

    static Frontier
    programStart()
    {
        Frontier f;
        f.start = true;
        f.guard = true;
        f.startKind = StartKind::AllInput;
        return f;
    }
};

Frontier
unionFrontiers(const Frontier &a, const Frontier &b)
{
    if (a.dead())
        return b;
    if (b.dead())
        return a;
    Frontier out;
    out.start = a.start || b.start;
    out.guard = a.guard || b.guard;
    out.startKind = a.start ? a.startKind : b.startKind;
    out.elems = a.elems;
    for (ElementId e : b.elems) {
        if (std::find(out.elems.begin(), out.elems.end(), e) ==
            out.elems.end()) {
            out.elems.push_back(e);
        }
    }
    out.consumed = (a.consumed == b.consumed) ? a.consumed : -1;
    return out;
}

/** One lexical environment frame (macro activation). */
class Scope {
  public:
    void push() { _scopes.emplace_back(); }
    void pop() { _scopes.pop_back(); }

    void
    declare(const std::string &name, Value value)
    {
        _scopes.back()[name] = std::move(value);
    }

    Value *
    find(const std::string &name)
    {
        for (auto it = _scopes.rbegin(); it != _scopes.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return &found->second;
        }
        return nullptr;
    }

  private:
    std::vector<std::unordered_map<std::string, Value>> _scopes;
};

/** The staged evaluator / code generator. */
class CodeGen {
  public:
    CodeGen(Program &program, const std::vector<Value> &network_args,
            const CompileOptions &options)
        : _program(program), _networkArgs(network_args), _options(options)
    {
    }

    CompiledProgram
    run()
    {
        CompiledProgram out;
        if (!_options.tileOnly) {
            compileNetwork(/*tile_only=*/false);
            finishCounters();
            if (!_out.injections.empty())
                excludeReservedSymbols();
            if (_options.positionalCounters)
                automata::expandPositional(_automaton);
            // Validate the raw lowering first: the optimizer prunes
            // dead structure and must never mask an invalid program
            // (e.g. a counter that is checked but never counted).
            _automaton.validate();
            if (_options.optimize) {
                auto codes = reportCodes(_automaton);
                _out.optStats =
                    automata::optimize(_automaton, _options.optimizer);
                checkReportCodesPreserved(codes, _automaton);
                _automaton.validate();
            }
            auto stats = _automaton.stats();
            logDebug("lang", strprintf(
                "compiled network: %zu STEs, %zu counters, %zu gates, "
                "%zu reporting",
                stats.stes, stats.counters, stats.gates,
                stats.reporting));
        }
        out = std::move(_out);
        out.automaton = std::move(_automaton);

        // Tessellation tile: re-run restricted to one iteration of the
        // first qualifying top-level some (§6 heuristic).
        CodeGen tiler(_program, _networkArgs, _options);
        tiler._tileOnly = true;
        tiler.compileNetwork(/*tile_only=*/true);
        if (tiler._tileInstances > 0) {
            tiler.finishCounters();
            if (_options.positionalCounters)
                automata::expandPositional(tiler._automaton);
            tiler._automaton.validate();
            if (_options.optimize) {
                auto codes = reportCodes(tiler._automaton);
                automata::optimize(tiler._automaton,
                                   _options.optimizer);
                checkReportCodesPreserved(codes, tiler._automaton);
                tiler._automaton.validate();
            }
            out.tile = std::move(tiler._automaton);
            out.tileInstances = tiler._tileInstances;
        }
        return out;
    }

  private:
    [[noreturn]] static void
    fail(const std::string &msg, SourceLoc loc)
    {
        throw CompileError(msg, loc);
    }

    /// Counter registry ---------------------------------------------------

    struct CounterInfo {
        std::string name;
        ElementId primary = kNoElement;
        ElementId secondary = kNoElement;
        /** Cached inverter over the primary counter's output. */
        ElementId primaryInverter = kNoElement;
        bool thresholdSet = false;
        uint32_t primaryTarget = 1;
        uint32_t secondaryTarget = 0;
        /** Recorded (source, port) feeding the logical counter. */
        std::vector<std::pair<ElementId, Port>> inputs;
    };

    CounterInfo &
    counterInfo(const Value &value, SourceLoc loc)
    {
        if (value.counter >= _counters.size())
            fail("invalid Counter reference", loc);
        return _counters[value.counter];
    }

    ElementId
    ensurePrimary(CounterInfo &info)
    {
        if (info.primary == kNoElement) {
            info.primary = _automaton.addCounter(
                info.primaryTarget, CounterMode::Latch,
                freshElementId(info.name));
            for (auto &[src, port] : info.inputs)
                _automaton.connect(src, info.primary, port);
            // Counters restart with their thread: the window-guard STE
            // (the START_OF_INPUT separator, or an explicit whenever
            // guard) pulses the reset port, so per-record state does
            // not leak across records.  Recorded in `inputs` so a
            // later secondary counter receives the same wiring.
            for (ElementId entry : _threadEntry) {
                _automaton.connect(entry, info.primary, Port::Reset);
                info.inputs.emplace_back(entry, Port::Reset);
            }
        }
        return info.primary;
    }

    ElementId
    ensureSecondary(CounterInfo &info, uint32_t target)
    {
        if (info.secondary == kNoElement) {
            info.secondary = _automaton.addCounter(
                target, CounterMode::Latch,
                freshElementId(info.name + "_hi"));
            info.secondaryTarget = target;
            for (auto &[src, port] : info.inputs)
                _automaton.connect(src, info.secondary, port);
        } else if (info.secondaryTarget != target) {
            throw CompileError("counter '" + info.name +
                               "' is checked against conflicting "
                               "thresholds (one threshold per counter)");
        }
        return info.secondary;
    }

    void
    setPrimaryTarget(CounterInfo &info, uint32_t target, SourceLoc loc)
    {
        if (target == 0) {
            fail("counter check against threshold 0 is trivially "
                 "true or false; use a compile-time bool",
                 loc);
        }
        if (info.thresholdSet && info.primaryTarget != target) {
            fail("counter '" + info.name +
                     "' is checked against conflicting thresholds (one "
                     "threshold per counter, §5.3)",
                 loc);
        }
        info.thresholdSet = true;
        info.primaryTarget = target;
        ensurePrimary(info);
        _automaton[info.primary].target = target;
    }

    /** Drop counters that were declared but never used. */
    void
    finishCounters()
    {
        for (CounterInfo &info : _counters) {
            if (info.primary != kNoElement && info.inputs.empty()) {
                throw CompileError("counter '" + info.name +
                                   "' is checked but never counted");
            }
        }
    }

    std::string
    freshElementId(const std::string &stem)
    {
        return strprintf("%s_%llu", stem.c_str(),
                         static_cast<unsigned long long>(_nameSerial++));
    }

    /// Compile-time evaluation --------------------------------------------

    Value
    evalExpr(const Expr &expr)
    {
        switch (expr.kind) {
          case ExprKind::IntLit:
            return Value::integer(expr.intValue);
          case ExprKind::BoolLit:
            return Value::boolean(expr.boolValue);
          case ExprKind::CharLit:
            return Value::character(expr.charValue);
          case ExprKind::StringLit:
            return Value::str(expr.text);
          case ExprKind::ArrayLit: {
            ValueList items;
            items.reserve(expr.args.size());
            for (const ExprPtr &item : expr.args)
                items.push_back(evalExpr(*item));
            return Value::array(expr.type.element(), std::move(items));
          }
          case ExprKind::Var: {
            Value *value = _env.find(expr.text);
            if (value == nullptr)
                fail("undefined variable '" + expr.text + "'", expr.loc);
            return *value;
          }
          case ExprKind::Index: {
            Value base = evalExpr(*expr.args[0]);
            Value index = evalExpr(*expr.args[1]);
            if (base.type == Type::stringT()) {
                if (index.i < 0 ||
                    index.i >= static_cast<int64_t>(base.s.size())) {
                    fail("string index " + std::to_string(index.i) +
                             " out of range",
                         expr.loc);
                }
                return Value::character(base.s[index.i]);
            }
            if (!base.arr || index.i < 0 ||
                index.i >= static_cast<int64_t>(base.arr->size())) {
                fail("array index " + std::to_string(index.i) +
                         " out of range",
                     expr.loc);
            }
            return (*base.arr)[index.i];
          }
          case ExprKind::Unary: {
            Value operand = evalExpr(*expr.args[0]);
            if (expr.uop == UnaryOp::Neg)
                return Value::integer(-operand.i);
            return Value::boolean(!operand.b);
          }
          case ExprKind::Binary:
            return evalBinary(expr);
          case ExprKind::Call:
            fail("call to '" + expr.text +
                     "' is not a compile-time expression",
                 expr.loc);
          case ExprKind::Method: {
            Value receiver = evalExpr(*expr.args[0]);
            if (expr.text == "length") {
                if (receiver.type == Type::stringT()) {
                    return Value::integer(
                        static_cast<int64_t>(receiver.s.size()));
                }
                return Value::integer(static_cast<int64_t>(
                    receiver.arr ? receiver.arr->size() : 0));
            }
            fail("method '" + expr.text +
                     "' is not a compile-time expression",
                 expr.loc);
          }
        }
        fail("unhandled expression", expr.loc);
    }

    Value
    evalBinary(const Expr &expr)
    {
        Value lhs = evalExpr(*expr.args[0]);
        Value rhs = evalExpr(*expr.args[1]);
        switch (expr.bop) {
          case BinaryOp::And:
            return Value::boolean(lhs.b && rhs.b);
          case BinaryOp::Or:
            return Value::boolean(lhs.b || rhs.b);
          case BinaryOp::Eq:
            return Value::boolean(lhs.equals(rhs));
          case BinaryOp::Ne:
            return Value::boolean(!lhs.equals(rhs));
          case BinaryOp::Lt:
          case BinaryOp::Le:
          case BinaryOp::Gt:
          case BinaryOp::Ge: {
            int64_t a;
            int64_t b;
            if (lhs.type == Type::charT()) {
                if (lhs.c.kind != CharSpec::Kind::Literal ||
                    rhs.c.kind != CharSpec::Kind::Literal) {
                    fail("special character constants cannot be ordered",
                         expr.loc);
                }
                a = lhs.c.value;
                b = rhs.c.value;
            } else {
                a = lhs.i;
                b = rhs.i;
            }
            switch (expr.bop) {
              case BinaryOp::Lt:
                return Value::boolean(a < b);
              case BinaryOp::Le:
                return Value::boolean(a <= b);
              case BinaryOp::Gt:
                return Value::boolean(a > b);
              default:
                return Value::boolean(a >= b);
            }
          }
          case BinaryOp::Add:
            if (lhs.type == Type::stringT())
                return Value::str(lhs.s + rhs.s);
            return Value::integer(lhs.i + rhs.i);
          case BinaryOp::Sub:
            return Value::integer(lhs.i - rhs.i);
          case BinaryOp::Mul:
            return Value::integer(lhs.i * rhs.i);
          case BinaryOp::Div:
            if (rhs.i == 0)
                fail("division by zero", expr.loc);
            return Value::integer(lhs.i / rhs.i);
          case BinaryOp::Mod:
            if (rhs.i == 0)
                fail("modulo by zero", expr.loc);
            return Value::integer(lhs.i % rhs.i);
        }
        fail("unhandled binary operator", expr.loc);
    }

    /// Automata expression folding (Fig. 7) -------------------------------

    /**
     * Negated character classes exclude the reserved START_OF_INPUT
     * symbol: a mismatch arm or skip loop must not survive across a
     * record boundary (§5.1's "complex STE character classes can
     * handle such reserved symbols").
     */
    static CharSet
    withoutStartSymbol(const CharSet &set)
    {
        CharSet out = set;
        out.remove(kStartOfInputSymbol);
        return out;
    }

    CharSet
    charToSet(const Value &value, SourceLoc loc)
    {
        if (!(value.type == Type::charT()))
            fail("expected a char value", loc);
        switch (value.c.kind) {
          case CharSpec::Kind::AllInput:
            return CharSet::all();
          case CharSpec::Kind::StartOfInput:
            return CharSet::single(kStartOfInputSymbol);
          case CharSpec::Kind::Literal:
            return CharSet::single(value.c.value);
        }
        return CharSet{};
    }

    ATree
    foldAutomata(const Expr &expr)
    {
        switch (expr.kind) {
          case ExprKind::Unary:
            if (expr.uop == UnaryOp::Not) {
                // Double negation cancels syntactically; the general
                // negation of an alternation of sequences is not
                // expressible with star padding.
                const Expr &inner = *expr.args[0];
                if (inner.kind == ExprKind::Unary &&
                    inner.uop == UnaryOp::Not) {
                    return foldAutomata(*inner.args[0]);
                }
                return negate(foldAutomata(inner), expr.loc);
            }
            break;
          case ExprKind::Binary: {
            const Expr &lhs = *expr.args[0];
            const Expr &rhs = *expr.args[1];
            if (expr.bop == BinaryOp::Eq || expr.bop == BinaryOp::Ne) {
                bool lhs_stream = lhs.type == Type::streamT();
                const Expr &other = lhs_stream ? rhs : lhs;
                CharSet set = charToSet(evalExpr(other), other.loc);
                if (expr.bop == BinaryOp::Ne)
                    set = withoutStartSymbol(~set);
                if (set.empty()) {
                    // != ALL_INPUT: can never match, but still must
                    // consume the symbol the comparison reads.
                    return ATree::fail();
                }
                return ATree::match(set);
            }
            if (expr.bop == BinaryOp::And || expr.bop == BinaryOp::Or) {
                bool is_and = expr.bop == BinaryOp::And;
                auto side = [&](const Expr &e) -> ATree {
                    if (e.type == Type::boolT()) {
                        return evalExpr(e).b ? ATree::epsilon()
                                             : ATree::fail();
                    }
                    return foldAutomata(e);
                };
                ATree left = side(lhs);
                ATree right = side(rhs);
                ATree out;
                out.kind =
                    is_and ? ATree::Kind::Seq : ATree::Kind::Alt;
                auto push = [&](ATree &&t) {
                    // Flatten nested nodes of the same kind so De
                    // Morgan expansion sees the full operand list.
                    if (t.kind == out.kind) {
                        for (ATree &child : t.children)
                            out.children.push_back(std::move(child));
                    } else {
                        out.children.push_back(std::move(t));
                    }
                };
                if (is_and) {
                    // Fail sequences can never match.
                    if (left.kind == ATree::Kind::Fail ||
                        right.kind == ATree::Kind::Fail) {
                        return ATree::fail();
                    }
                    if (left.kind != ATree::Kind::Epsilon)
                        push(std::move(left));
                    if (right.kind != ATree::Kind::Epsilon)
                        push(std::move(right));
                    if (out.children.empty())
                        return ATree::epsilon();
                    if (out.children.size() == 1)
                        return std::move(out.children.front());
                    return out;
                }
                if (left.kind != ATree::Kind::Fail)
                    push(std::move(left));
                if (right.kind != ATree::Kind::Fail)
                    push(std::move(right));
                if (out.children.empty())
                    return ATree::fail();
                if (out.children.size() == 1)
                    return std::move(out.children.front());
                return out;
            }
            break;
          }
          default:
            break;
        }
        fail("expression cannot be compiled to automata", expr.loc);
    }

    /**
     * The derived negation of a control-flow condition (if/while).
     * Syntactic double negation must cancel *before* folding:
     * tree-level negation clips complements at START_OF_INPUT, so
     * negate(negate(t)) is not the identity for sets containing the
     * separator — the else branch of `if (!(START_OF_INPUT ==
     * input()))` must match the separator, not fail.  Mirrors the
     * interpreter's notMatchExpr.
     */
    ATree
    foldNegatedCond(const Expr &cond)
    {
        if (cond.kind == ExprKind::Unary && cond.uop == UnaryOp::Not)
            return foldAutomata(*cond.args[0]);
        return negate(foldAutomata(cond), cond.loc);
    }

    /**
     * De Morgan negation (Fig. 7).  An expression and its negation
     * consume the same number of symbols; mismatch alternatives are
     * padded with star states.
     */
    ATree
    negate(const ATree &tree, SourceLoc loc)
    {
        switch (tree.kind) {
          case ATree::Kind::Epsilon:
            return ATree::fail();
          case ATree::Kind::Fail:
            return ATree::epsilon();
          case ATree::Kind::Match: {
            CharSet flipped = withoutStartSymbol(~tree.set);
            if (flipped.empty()) {
                // !(ALL_INPUT == input()): never true, one symbol.
                return ATree::fail();
            }
            return ATree::match(flipped);
          }
          case ATree::Kind::Alt: {
            // All alternatives are single symbol matches: complement
            // the union.  Anything richer is not expressible with
            // fixed-length padding.
            CharSet united;
            for (const ATree &child : tree.children) {
                if (child.kind != ATree::Kind::Match) {
                    fail("cannot negate an alternation of multi-symbol "
                         "expressions",
                         loc);
                }
                united |= child.set;
            }
            CharSet flipped = withoutStartSymbol(~united);
            if (flipped.empty())
                return ATree::fail();
            return ATree::match(flipped);
          }
          case ATree::Kind::Seq: {
            // !(e1 && ... && en) = OR over i of
            //   e1 .. e_{i-1}  !e_i  *^(len after i)
            ATree out;
            out.kind = ATree::Kind::Alt;
            std::vector<int> lengths;
            for (const ATree &child : tree.children) {
                int len = child.length();
                if (len < 0) {
                    fail("cannot negate a variable-length expression",
                         loc);
                }
                lengths.push_back(len);
            }
            for (size_t i = 0; i < tree.children.size(); ++i) {
                ATree arm;
                arm.kind = ATree::Kind::Seq;
                for (size_t j = 0; j < i; ++j)
                    arm.children.push_back(tree.children[j]);
                ATree negated = negate(tree.children[i], loc);
                if (negated.kind == ATree::Kind::Fail)
                    continue; // this position can never mismatch
                arm.children.push_back(std::move(negated));
                int pad = 0;
                for (size_t j = i + 1; j < tree.children.size(); ++j)
                    pad += lengths[j];
                for (int j = 0; j < pad; ++j) {
                    arm.children.push_back(ATree::match(
                        withoutStartSymbol(CharSet::all())));
                }
                out.children.push_back(std::move(arm));
            }
            if (out.children.empty())
                return ATree::fail();
            if (out.children.size() == 1)
                return std::move(out.children.front());
            return out;
          }
        }
        fail("unhandled negation", loc);
    }

    /// Chain emission -----------------------------------------------------

    Chain
    emit(const ATree &tree)
    {
        switch (tree.kind) {
          case ATree::Kind::Epsilon: {
            Chain chain;
            chain.passthrough = true;
            return chain;
          }
          case ATree::Kind::Fail: {
            Chain chain;
            chain.fail = true;
            return chain;
          }
          case ATree::Kind::Match: {
            Chain chain;
            ElementId ste = _automaton.addSte(tree.set);
            chain.entries.push_back(ste);
            chain.exits.push_back(ste);
            return chain;
          }
          case ATree::Kind::Seq: {
            Chain chain;
            bool first = true;
            std::vector<ElementId> current;
            bool current_pass = false;
            for (const ATree &child : tree.children) {
                Chain piece = emit(child);
                if (piece.fail) {
                    Chain failed;
                    failed.fail = true;
                    return failed;
                }
                if (piece.passthrough && piece.entries.empty())
                    continue; // epsilon link
                if (first) {
                    chain.entries = piece.entries;
                    chain.passthrough = false;
                    first = false;
                } else {
                    for (ElementId from : current) {
                        for (ElementId to : piece.entries)
                            _automaton.connect(from, to);
                    }
                    if (current_pass) {
                        throw CompileError(
                            "an alternation that may consume no input "
                            "cannot be followed by further comparisons");
                    }
                }
                current = piece.exits;
                current_pass = piece.passthrough;
            }
            if (first) {
                chain.passthrough = true;
                return chain;
            }
            chain.exits = std::move(current);
            return chain;
          }
          case ATree::Kind::Alt: {
            Chain chain;
            CharSet fused;
            bool any_fused = false;
            for (const ATree &child : tree.children) {
                if (child.kind == ATree::Kind::Match) {
                    // Fig. 7 special case: single-STE alternatives
                    // merge into one STE with a wider class.
                    fused |= child.set;
                    any_fused = true;
                    continue;
                }
                Chain piece = emit(child);
                if (piece.fail)
                    continue;
                if (piece.passthrough)
                    chain.passthrough = true;
                chain.entries.insert(chain.entries.end(),
                                     piece.entries.begin(),
                                     piece.entries.end());
                chain.exits.insert(chain.exits.end(),
                                   piece.exits.begin(),
                                   piece.exits.end());
            }
            if (any_fused) {
                ElementId ste = _automaton.addSte(fused);
                chain.entries.push_back(ste);
                chain.exits.push_back(ste);
            }
            if (chain.entries.empty() && !chain.passthrough)
                chain.fail = true;
            return chain;
          }
        }
        throw InternalError("unhandled ATree kind");
    }

    /// Frontier plumbing --------------------------------------------------

    /**
     * Resolve the `start` flag of a frontier into a concrete element:
     * the [START_OF_INPUT] window guard (guard mode) or an always-
     * enabled star STE (folded whenever mode).
     */
    Frontier
    materialize(const Frontier &frontier)
    {
        if (!frontier.start)
            return frontier;
        Frontier out = frontier;
        out.start = false;
        CharSet set = frontier.guard
                          ? CharSet::single(kStartOfInputSymbol)
                          : CharSet::all();
        ElementId ste =
            _automaton.addSte(set, StartKind::AllInput);
        if (!frontier.guard && frontier.startKind != StartKind::AllInput)
            _automaton[ste].start = frontier.startKind;
        if (frontier.guard)
            _threadEntry = {ste};
        out.elems.push_back(ste);
        return out;
    }

    /** Attach a compiled chain after a frontier. */
    Frontier
    attach(const Frontier &frontier, const Chain &chain,
           int chain_length)
    {
        if (frontier.dead() || chain.fail)
            return Frontier::deadFrontier();
        Frontier out;
        out.consumed =
            (frontier.consumed >= 0 && chain_length >= 0)
                ? frontier.consumed + chain_length
                : -1;
        if (chain.passthrough && chain.entries.empty())
            return frontier; // pure epsilon
        if (frontier.start) {
            if (frontier.guard) {
                ElementId guard = _automaton.addSte(
                    CharSet::single(kStartOfInputSymbol),
                    StartKind::AllInput);
                _threadEntry = {guard};
                for (ElementId entry : chain.entries)
                    _automaton.connect(guard, entry);
            } else {
                for (ElementId entry : chain.entries)
                    _automaton[entry].start = frontier.startKind;
            }
        }
        for (ElementId from : frontier.elems) {
            for (ElementId entry : chain.entries)
                _automaton.connect(from, entry);
        }
        out.elems = chain.exits;
        if (chain.passthrough) {
            Frontier merged = unionFrontiers(out, frontier);
            merged.consumed = -1; // ambiguous consumption
            return merged;
        }
        return out;
    }

    /**
     * Before attaching several alternative chains to a start frontier
     * in window-guard mode, materialize the guard once so the branches
     * share a single [START_OF_INPUT] STE.  Folded start frontiers stay
     * symbolic: every branch entry simply receives the start kind.
     */
    Frontier
    shareStart(Frontier frontier)
    {
        if (frontier.start && frontier.guard)
            return materialize(frontier);
        return frontier;
    }

    /**
     * A single element whose activation means "control is here": the
     * lone frontier element, or an OR gate over several.
     */
    ElementId
    controlSignal(Frontier &frontier)
    {
        frontier = materialize(frontier);
        internalCheck(!frontier.dead(), "control signal of dead frontier");
        if (frontier.elems.size() == 1)
            return frontier.elems.front();
        ElementId gate = _automaton.addGate(GateOp::Or);
        for (ElementId elem : frontier.elems)
            _automaton.connect(elem, gate);
        return gate;
    }

    /// Counter checks (Table 2, §5.3) --------------------------------------

    /** Normalized counter comparison: counter OP literal. */
    struct CounterCheck {
        uint32_t counterIndex = 0;
        BinaryOp op = BinaryOp::Ge;
        int64_t bound = 0;
    };

    CounterCheck
    normalizeCounterExpr(const Expr &expr, bool negated)
    {
        if (expr.kind == ExprKind::Unary && expr.uop == UnaryOp::Not)
            return normalizeCounterExpr(*expr.args[0], !negated);
        internalCheck(expr.kind == ExprKind::Binary,
                      "malformed counter check");
        const Expr &lhs = *expr.args[0];
        const Expr &rhs = *expr.args[1];
        bool counter_left = lhs.type == Type::counterT();
        Value counter = evalExpr(counter_left ? lhs : rhs);
        Value bound = evalExpr(counter_left ? rhs : lhs);
        BinaryOp op = expr.bop;
        if (!counter_left) {
            // x OP cnt  ==  cnt flip(OP) x
            switch (op) {
              case BinaryOp::Lt:
                op = BinaryOp::Gt;
                break;
              case BinaryOp::Le:
                op = BinaryOp::Ge;
                break;
              case BinaryOp::Gt:
                op = BinaryOp::Lt;
                break;
              case BinaryOp::Ge:
                op = BinaryOp::Le;
                break;
              default:
                break;
            }
        }
        if (negated) {
            switch (op) {
              case BinaryOp::Lt:
                op = BinaryOp::Ge;
                break;
              case BinaryOp::Le:
                op = BinaryOp::Gt;
                break;
              case BinaryOp::Gt:
                op = BinaryOp::Le;
                break;
              case BinaryOp::Ge:
                op = BinaryOp::Lt;
                break;
              case BinaryOp::Eq:
                op = BinaryOp::Ne;
                break;
              case BinaryOp::Ne:
                op = BinaryOp::Eq;
                break;
              default:
                break;
            }
        }
        if (bound.i < 0)
            fail("counter thresholds must be non-negative", expr.loc);
        CounterCheck check;
        check.counterIndex = counter.counter;
        check.op = op;
        check.bound = bound.i;
        return check;
    }

    /** The inverter over the primary counter (created once). */
    ElementId
    primaryInverter(CounterInfo &info)
    {
        if (info.primaryInverter == kNoElement) {
            info.primaryInverter = _automaton.addGate(GateOp::Not);
            _automaton.connect(ensurePrimary(info), info.primaryInverter);
        }
        return info.primaryInverter;
    }

    /**
     * The combinational signal that is active exactly when the check
     * holds, per Table 2.  May create gates and the secondary counter.
     * For the pure non-inverted cases the counter output itself is the
     * signal and `direct` is set: control may then continue from the
     * counter with no gate (the published ARM design; clock divisor 1).
     */
    std::pair<ElementId, bool>
    checkSignal(const CounterCheck &check, SourceLoc loc)
    {
        CounterInfo &info = _counters[check.counterIndex];
        switch (check.op) {
          case BinaryOp::Ge:
            setPrimaryTarget(info, static_cast<uint32_t>(check.bound),
                             loc);
            return {info.primary, true};
          case BinaryOp::Gt:
            setPrimaryTarget(info,
                             static_cast<uint32_t>(check.bound) + 1, loc);
            return {info.primary, true};
          case BinaryOp::Lt:
            setPrimaryTarget(info, static_cast<uint32_t>(check.bound),
                             loc);
            return {primaryInverter(info), false};
          case BinaryOp::Le:
            setPrimaryTarget(info,
                             static_cast<uint32_t>(check.bound) + 1, loc);
            return {primaryInverter(info), false};
          case BinaryOp::Eq: {
            // == x  →  >= x && <= x (two physical counters, §5.3).
            setPrimaryTarget(info, static_cast<uint32_t>(check.bound),
                             loc);
            ElementId high = ensureSecondary(
                info, static_cast<uint32_t>(check.bound) + 1);
            ElementId not_high = _automaton.addGate(GateOp::Not);
            _automaton.connect(high, not_high);
            ElementId both = _automaton.addGate(GateOp::And);
            _automaton.connect(info.primary, both);
            _automaton.connect(not_high, both);
            return {both, false};
          }
          case BinaryOp::Ne: {
            // != x  →  < x || > x (Table 2).
            setPrimaryTarget(info, static_cast<uint32_t>(check.bound),
                             loc);
            ElementId high = ensureSecondary(
                info, static_cast<uint32_t>(check.bound) + 1);
            ElementId either = _automaton.addGate(GateOp::Or);
            _automaton.connect(primaryInverter(info), either);
            _automaton.connect(high, either);
            return {either, false};
          }
          default:
            break;
        }
        throw InternalError("unhandled counter comparison");
    }

    /** Lower a counter assertion / condition into a new frontier. */
    Frontier
    applyCounterCheck(Frontier frontier, const Expr &expr, bool negated)
    {
        if (frontier.dead())
            return frontier;
        CounterCheck check = normalizeCounterExpr(expr, negated);
        CounterInfo &info = _counters[check.counterIndex];

        if (_options.counterCheckViaInjection) {
            // §5.3: allocate a reserved symbol; the host injects it at
            // the check position, and an STE matching it — enabled by
            // the check signal — carries control onward.
            auto [signal, direct] = checkSignal(check, expr.loc);
            (void)direct;
            unsigned char symbol = allocateReservedSymbol(expr.loc);
            ElementId ste =
                _automaton.addSte(CharSet::single(symbol));
            _automaton.connect(signal, ste);
            SymbolInjection injection;
            injection.symbol = symbol;
            injection.period = frontier.consumed > 0
                                   ? static_cast<uint64_t>(
                                         frontier.consumed)
                                   : 0;
            injection.counterName = info.name;
            _out.injections.push_back(injection);
            Frontier out;
            out.elems.push_back(ste);
            out.consumed = frontier.consumed; // injected symbol is meta
            return out;
        }

        auto [signal, direct] = checkSignal(check, expr.loc);
        Frontier out;
        out.consumed = frontier.consumed;
        if (direct) {
            // Latching counter output carries control directly (no
            // gate), as in the published ARM design.
            out.elems.push_back(signal);
            return out;
        }
        ElementId control = controlSignal(frontier);
        ElementId both = _automaton.addGate(GateOp::And);
        _automaton.connect(control, both);
        _automaton.connect(signal, both);
        out.elems.push_back(both);
        return out;
    }

    unsigned char
    allocateReservedSymbol(SourceLoc loc)
    {
        if (_nextReserved <= 0xF0)
            fail("too many reserved-symbol counter checks", loc);
        return static_cast<unsigned char>(--_nextReserved);
    }

    /** Remove reserved symbols from every non-checker STE class. */
    void
    excludeReservedSymbols()
    {
        CharSet reserved;
        for (const SymbolInjection &injection : _out.injections)
            reserved.add(injection.symbol);
        for (ElementId i = 0; i < _automaton.size(); ++i) {
            automata::Element &element = _automaton[i];
            if (element.kind != automata::ElementKind::Ste)
                continue;
            CharSet masked = element.symbols & reserved;
            if (masked == element.symbols)
                continue; // a checker STE
            element.symbols = element.symbols & ~reserved;
        }
    }

    /// Statements ----------------------------------------------------------

    Frontier
    evalBody(const std::vector<StmtPtr> &body, Frontier frontier)
    {
        _env.push();
        for (const StmtPtr &stmt : body)
            frontier = evalStmt(*stmt, std::move(frontier));
        _env.pop();
        return frontier;
    }

    Frontier
    evalStmt(const Stmt &stmt, Frontier frontier)
    {
        switch (stmt.kind) {
          case StmtKind::VarDecl:
            evalVarDecl(stmt);
            return frontier;
          case StmtKind::Assign:
            evalAssign(stmt);
            return frontier;
          case StmtKind::Expr:
            return evalExprStmt(stmt, std::move(frontier));
          case StmtKind::Report:
            return evalReport(stmt, std::move(frontier));
          case StmtKind::If:
            return evalIf(stmt, std::move(frontier));
          case StmtKind::While:
            return evalWhile(stmt, std::move(frontier));
          case StmtKind::Foreach:
            return evalForeach(stmt, std::move(frontier));
          case StmtKind::Some:
            return evalSome(stmt, std::move(frontier));
          case StmtKind::Either:
            return evalEither(stmt, std::move(frontier));
          case StmtKind::Whenever:
            return evalWhenever(stmt, std::move(frontier));
          case StmtKind::Block:
            return evalBody(stmt.body, std::move(frontier));
        }
        throw InternalError("unhandled statement kind");
    }

    void
    evalVarDecl(const Stmt &stmt)
    {
        if (stmt.declType.base == BaseType::Counter) {
            CounterInfo info;
            info.name = stmt.name;
            _counters.push_back(std::move(info));
            _env.declare(stmt.name, Value::counterRef(
                                        static_cast<uint32_t>(
                                            _counters.size() - 1)));
            return;
        }
        Value value;
        if (stmt.expr) {
            value = evalExpr(*stmt.expr);
        } else {
            // Zero defaults for scalars.
            switch (stmt.declType.base) {
              case BaseType::Int:
                value = Value::integer(0);
                break;
              case BaseType::Bool:
                value = Value::boolean(false);
                break;
              case BaseType::Char:
                value = Value::character('\0');
                break;
              case BaseType::String:
                value = Value::str("");
                break;
              default:
                fail("variable '" + stmt.name +
                         "' requires an initializer",
                     stmt.loc);
            }
        }
        _env.declare(stmt.name, std::move(value));
    }

    void
    evalAssign(const Stmt &stmt)
    {
        Value value = evalExpr(*stmt.expr);
        const Expr &target = *stmt.target;
        if (target.kind == ExprKind::Var) {
            Value *slot = _env.find(target.text);
            if (slot == nullptr)
                fail("undefined variable '" + target.text + "'",
                     target.loc);
            *slot = std::move(value);
            return;
        }
        // Index assignment: mutate the shared array payload.
        Value base = evalExpr(*target.args[0]);
        Value index = evalExpr(*target.args[1]);
        if (!base.arr || index.i < 0 ||
            index.i >= static_cast<int64_t>(base.arr->size())) {
            fail("array index out of range in assignment", stmt.loc);
        }
        (*base.arr)[index.i] = std::move(value);
    }

    Frontier
    evalExprStmt(const Stmt &stmt, Frontier frontier)
    {
        const Expr &expr = *stmt.expr;
        if (expr.type == Type::automataT()) {
            if (frontier.dead())
                return frontier;
            ATree tree = foldAutomata(expr);
            int len = tree.length();
            Chain chain = emit(tree);
            return attach(frontier, chain, len);
        }
        if (expr.type == Type::counterExprT())
            return applyCounterCheck(std::move(frontier), expr, false);
        if (expr.type == Type::boolT()) {
            // Compile-time assertion: false kills this thread.
            return evalExpr(expr).b ? std::move(frontier)
                                    : Frontier::deadFrontier();
        }
        // Void: macro or counter-method call.
        if (expr.kind == ExprKind::Method)
            return evalCounterMethod(expr, std::move(frontier));
        if (expr.kind == ExprKind::Call)
            return evalMacroCall(expr, std::move(frontier));
        evalExpr(expr);
        return frontier;
    }

    Frontier
    evalCounterMethod(const Expr &expr, Frontier frontier)
    {
        if (frontier.dead())
            return frontier;
        Value receiver = evalExpr(*expr.args[0]);
        CounterInfo &info = counterInfo(receiver, expr.loc);
        Port port = expr.text == "count" ? Port::Count : Port::Reset;
        frontier = materialize(frontier);
        ensurePrimary(info);
        for (ElementId elem : frontier.elems) {
            _automaton.connect(elem, info.primary, port);
            if (info.secondary != kNoElement)
                _automaton.connect(elem, info.secondary, port);
            info.inputs.emplace_back(elem, port);
        }
        return frontier;
    }

    Frontier
    evalMacroCall(const Expr &expr, Frontier frontier)
    {
        const MacroDecl *macro = _program.findMacro(expr.text);
        internalCheck(macro != nullptr, "call to unknown macro");
        if (++_callDepth > 256) {
            fail("macro instantiation too deep (unbounded recursion?)",
                 expr.loc);
        }
        std::vector<Value> args;
        args.reserve(expr.args.size());
        for (const ExprPtr &arg : expr.args)
            args.push_back(evalExpr(*arg));

        // Fresh activation frame: macros see only their parameters.
        Scope saved = std::move(_env);
        _env = Scope{};
        _env.push();
        for (size_t i = 0; i < args.size(); ++i)
            _env.declare(macro->params[i].name, std::move(args[i]));

        size_t instance = _instanceCount[macro->name]++;
        _reportStack.push_back(
            strprintf("%s#%llu", macro->name.c_str(),
                      static_cast<unsigned long long>(instance)));
        Frontier out = frontier;
        for (const StmtPtr &stmt : macro->body)
            out = evalStmt(*stmt, std::move(out));
        _reportStack.pop_back();

        _env = std::move(saved);
        --_callDepth;
        return out;
    }

    Frontier
    evalReport(const Stmt &stmt, Frontier frontier)
    {
        if (frontier.dead())
            return frontier;
        frontier = materialize(frontier);
        std::string code = _reportStack.empty()
                               ? std::string("network")
                               : _reportStack.back();
        for (ElementId elem : frontier.elems)
            _automaton.setReport(elem, code);
        (void)stmt;
        return frontier;
    }

    Frontier
    evalIf(const Stmt &stmt, Frontier frontier)
    {
        const Expr &cond = *stmt.expr;
        if (cond.type == Type::boolT()) {
            return evalExpr(cond).b
                       ? evalBody(stmt.body, std::move(frontier))
                       : evalBody(stmt.orelse, std::move(frontier));
        }
        if (frontier.dead())
            return frontier;
        if (cond.type == Type::counterExprT()) {
            frontier = materialize(frontier);
            Frontier then_in =
                applyCounterCheck(frontier, cond, false);
            Frontier then_out = evalBody(stmt.body, std::move(then_in));
            if (stmt.orelse.empty()) {
                // No else: control also continues ungated (counter
                // checks consume no input), without emitting the dead
                // negated gating structure.
                return unionFrontiers(then_out, frontier);
            }
            Frontier else_in =
                applyCounterCheck(frontier, cond, true);
            Frontier else_out =
                evalBody(stmt.orelse, std::move(else_in));
            return unionFrontiers(then_out, else_out);
        }
        // Automata condition: desugar into either/orelse (§3.3); both
        // branches consume the same number of symbols by construction.
        ATree tree = foldAutomata(cond);
        ATree negated = foldNegatedCond(cond);
        frontier = shareStart(std::move(frontier));

        Chain then_chain = emit(tree);
        Frontier then_in = attach(frontier, then_chain, tree.length());
        Frontier then_out = evalBody(stmt.body, std::move(then_in));

        Chain else_chain = emit(negated);
        Frontier else_in =
            attach(frontier, else_chain, negated.length());
        Frontier else_out = evalBody(stmt.orelse, std::move(else_in));
        return unionFrontiers(then_out, else_out);
    }

    Frontier
    evalWhile(const Stmt &stmt, Frontier frontier)
    {
        const Expr &cond = *stmt.expr;
        if (cond.type == Type::boolT()) {
            // Compile-time loop (staged evaluation).
            size_t iterations = 0;
            while (evalExpr(cond).b) {
                if (++iterations > 1000000) {
                    fail("compile-time while loop did not terminate",
                         stmt.loc);
                }
                frontier = evalBody(stmt.body, std::move(frontier));
            }
            return frontier;
        }
        if (frontier.dead())
            return frontier;
        if (cond.type == Type::counterExprT())
            return evalCounterWhile(stmt, std::move(frontier));

        // Fig. 8c: predicate / body feedback loop; the negated
        // predicate exits the loop.
        ATree tree = foldAutomata(cond);
        ATree negated = foldNegatedCond(cond);
        frontier = shareStart(std::move(frontier));

        Chain pred = emit(tree);
        Chain exit_chain = emit(negated);
        Frontier pred_in = attach(frontier, pred, tree.length());
        Frontier exit_out =
            attach(frontier, exit_chain, negated.length());

        Frontier body_out = evalBody(stmt.body, pred_in);
        // Loop back: after the body, re-check both predicate forms.
        if (!body_out.dead()) {
            body_out = materialize(body_out);
            for (ElementId from : body_out.elems) {
                for (ElementId to : pred.entries)
                    _automaton.connect(from, to);
                for (ElementId to : exit_chain.entries)
                    _automaton.connect(from, to);
            }
        }
        Frontier out = exit_out;
        out.consumed = -1; // unbounded iterations
        return out;
    }

    Frontier
    evalCounterWhile(const Stmt &stmt, Frontier frontier)
    {
        // while (cnt OP x) body: control loops through the body while
        // the check holds and exits when it fails.  Both gates take the
        // loop-control OR as an operand; body exits are added to that
        // OR after the body compiles.
        const Expr &cond = *stmt.expr;
        frontier = materialize(frontier);
        ElementId loop_or = _automaton.addGate(GateOp::Or);
        for (ElementId elem : frontier.elems)
            _automaton.connect(elem, loop_or);

        CounterCheck positive = normalizeCounterExpr(cond, false);
        auto [pos_signal, pos_direct] = checkSignal(positive, cond.loc);
        (void)pos_direct;
        ElementId enter = _automaton.addGate(GateOp::And);
        _automaton.connect(loop_or, enter);
        _automaton.connect(pos_signal, enter);

        CounterCheck negative = normalizeCounterExpr(cond, true);
        auto [neg_signal, neg_direct] = checkSignal(negative, cond.loc);
        (void)neg_direct;
        ElementId leave = _automaton.addGate(GateOp::And);
        _automaton.connect(loop_or, leave);
        _automaton.connect(neg_signal, leave);

        Frontier body_in;
        body_in.elems.push_back(enter);
        body_in.consumed = -1;
        Frontier body_out = evalBody(stmt.body, std::move(body_in));
        if (!body_out.dead()) {
            body_out = materialize(body_out);
            for (ElementId elem : body_out.elems)
                _automaton.connect(elem, loop_or);
        }
        Frontier out;
        out.elems.push_back(leave);
        out.consumed = -1;
        return out;
    }

    /** Resolve an iterable value into per-element Values. */
    ValueList
    iterableItems(const Expr &expr)
    {
        Value value = evalExpr(expr);
        ValueList items;
        if (value.type == Type::stringT()) {
            items.reserve(value.s.size());
            for (char c : value.s)
                items.push_back(Value::character(c));
            return items;
        }
        if (value.arr)
            return *value.arr;
        return items;
    }

    Frontier
    evalForeach(const Stmt &stmt, Frontier frontier)
    {
        ValueList items = iterableItems(*stmt.expr);
        for (Value &item : items) {
            _env.push();
            _env.declare(stmt.name, std::move(item));
            for (const StmtPtr &inner : stmt.body)
                frontier = evalStmt(*inner, std::move(frontier));
            _env.pop();
        }
        return frontier;
    }

    Frontier
    evalSome(const Stmt &stmt, Frontier frontier)
    {
        ValueList items = iterableItems(*stmt.expr);
        Frontier out = Frontier::deadFrontier();
        for (Value &item : items) {
            _env.push();
            _env.declare(stmt.name, std::move(item));
            std::vector<ElementId> saved_entry = _threadEntry;
            Frontier branch = frontier;
            for (const StmtPtr &inner : stmt.body)
                branch = evalStmt(*inner, std::move(branch));
            _threadEntry = std::move(saved_entry);
            _env.pop();
            out = unionFrontiers(out, branch);
        }
        return out;
    }

    Frontier
    evalEither(const Stmt &stmt, Frontier frontier)
    {
        // Arms of one either belong to one automaton: they share the
        // window guard rather than each materializing its own.
        frontier = shareStart(std::move(frontier));
        Frontier out = Frontier::deadFrontier();
        for (const StmtPtr &arm : stmt.body) {
            Frontier branch = evalBody(arm->body, frontier);
            out = unionFrontiers(out, branch);
        }
        return out;
    }

    Frontier
    evalWhenever(const Stmt &stmt, Frontier frontier)
    {
        const Expr &guard = *stmt.expr;
        if (frontier.dead())
            return frontier;

        if (guard.type == Type::counterExprT()) {
            // Fig. 9: a self-activating star STE tracks that the
            // statement has been reached; an AND gate combines it with
            // the counter check.  At the program start the whenever
            // replaces the default window (see below).
            ElementId star = _automaton.addSte(CharSet::all());
            if (frontier.start) {
                _automaton[star].start = StartKind::AllInput;
            } else {
                for (ElementId elem : frontier.elems)
                    _automaton.connect(elem, star);
            }
            _automaton.connect(star, star); // self-activation
            CounterCheck check = normalizeCounterExpr(guard, false);
            auto [signal, direct] = checkSignal(check, guard.loc);
            (void)direct;
            ElementId both = _automaton.addGate(GateOp::And);
            _automaton.connect(star, both);
            _automaton.connect(signal, both);
            Frontier body_in;
            body_in.elems.push_back(both);
            body_in.consumed = -1;
            return evalBody(stmt.body, std::move(body_in));
        }

        ATree tree = foldAutomata(guard);

        if (frontier.start && _options.foldStartWhenever) {
            // Top-level whenever replaces the default sliding window
            // (§3.3).  A pure ALL_INPUT guard folds away entirely: the
            // body begins at every stream position.
            Frontier body_in;
            if (tree.kind == ATree::Kind::Match &&
                tree.set == CharSet::all()) {
                // Overlapping windows share no clean boundary, so
                // counters declared inside cannot be window-reset.
                _threadEntry.clear();
                body_in.start = true;
                body_in.guard = false;
                body_in.startKind = StartKind::AllInput;
                body_in.consumed = -1;
                return evalBody(stmt.body, std::move(body_in));
            }
            Chain chain = emit(tree);
            for (ElementId entry : chain.entries)
                _automaton[entry].start = StartKind::AllInput;
            _threadEntry = chain.exits; // threads begin per guard match
            body_in.elems = chain.exits;
            body_in.consumed = -1;
            return evalBody(stmt.body, std::move(body_in));
        }

        // Fig. 8d: star STE keeps the guard hot from the moment control
        // arrives.  At the program start an explicit whenever replaces
        // the default sliding window (§3.3): the star is enabled on
        // every symbol rather than gated behind a record separator.
        ElementId star = _automaton.addSte(CharSet::all());
        if (frontier.start) {
            _automaton[star].start = StartKind::AllInput;
        } else {
            for (ElementId elem : frontier.elems)
                _automaton.connect(elem, star);
        }
        _automaton.connect(star, star);
        Chain chain = emit(tree);
        for (ElementId entry : chain.entries) {
            _automaton.connect(star, entry);
            // Direct edges from the frontier so the guard is already
            // checked at the first position after control arrives (the
            // star alone would delay it by one symbol).
            for (ElementId elem : frontier.elems)
                _automaton.connect(elem, entry);
        }
        _threadEntry = chain.exits;
        Frontier body_in;
        body_in.elems = chain.exits;
        body_in.consumed = -1;
        return evalBody(stmt.body, std::move(body_in));
    }

    /// Network compilation --------------------------------------------------

    /** Does @p expr mention any network parameter? */
    bool
    mentionsNetworkParam(const Expr &expr) const
    {
        if (expr.kind == ExprKind::Var) {
            for (const Param &param : _program.network.params) {
                if (param.name == expr.text)
                    return true;
            }
        }
        for (const ExprPtr &child : expr.args) {
            if (mentionsNetworkParam(*child))
                return true;
        }
        return false;
    }

    void
    compileNetwork(bool tile_only)
    {
        const MacroDecl &network = _program.network;
        if (_networkArgs.size() != network.params.size()) {
            throw CompileError(
                strprintf("network expects %zu arguments, got %zu",
                          network.params.size(), _networkArgs.size()));
        }
        _env.push();
        for (size_t i = 0; i < network.params.size(); ++i) {
            const Param &param = network.params[i];
            if (!(_networkArgs[i].type == param.type)) {
                throw CompileError(
                    "network argument '" + param.name + "' has type " +
                    _networkArgs[i].type.str() + "; expected " +
                    param.type.str());
            }
            _env.declare(param.name, _networkArgs[i]);
        }
        _reportStack.push_back("network");

        // Network statements execute in parallel (§3.1): every
        // non-declaration statement starts from the program-start
        // frontier.  Declarations thread the compile-time environment.
        for (const StmtPtr &stmt : network.body) {
            if (stmt->kind == StmtKind::VarDecl ||
                stmt->kind == StmtKind::Assign) {
                evalStmt(*stmt, Frontier::deadFrontier());
                continue;
            }
            if (tile_only) {
                if (stmt->kind == StmtKind::Some &&
                    mentionsNetworkParam(*stmt->expr)) {
                    compileTileSome(*stmt);
                    break;
                }
                continue;
            }
            _threadEntry.clear();
            evalStmt(*stmt, Frontier::programStart());
        }

        _reportStack.pop_back();
        _env.pop();
    }

    /** Compile exactly one iteration of a qualifying top-level some. */
    void
    compileTileSome(const Stmt &stmt)
    {
        ValueList items = iterableItems(*stmt.expr);
        _tileInstances = items.size();
        if (items.empty())
            return;
        _env.push();
        _env.declare(stmt.name, items.front());
        Frontier branch = Frontier::programStart();
        for (const StmtPtr &inner : stmt.body)
            branch = evalStmt(*inner, std::move(branch));
        _env.pop();
    }

    Program &_program;
    const std::vector<Value> &_networkArgs;
    CompileOptions _options;

    Automaton _automaton;
    CompiledProgram _out;
    Scope _env;
    std::vector<CounterInfo> _counters;
    std::vector<std::string> _reportStack;
    std::unordered_map<std::string, size_t> _instanceCount;
    /**
     * The element(s) marking the start of the current parallel thread
     * (the window-guard STE or an explicit whenever guard's exits);
     * counters created within the thread take their reset pulse here.
     */
    std::vector<ElementId> _threadEntry;
    uint64_t _nameSerial = 0;
    size_t _callDepth = 0;
    int _nextReserved = 0xFF; // reserved symbols grow downward from 0xFE
    bool _tileOnly = false;
    size_t _tileInstances = 0;
};

} // namespace

CompiledProgram
compileProgram(Program &program, const std::vector<Value> &network_args,
               const CompileOptions &options)
{
    obs::Span compile_span("compile");
    {
        obs::Span span("typecheck");
        typeCheck(program);
    }
    CompiledProgram out;
    {
        // "lower" covers staged evaluation plus the optimizer and
        // positional-expansion passes CodeGen::run() invokes; those
        // show up as child spans.
        obs::Span span("lower");
        out = CodeGen(program, network_args, options).run();
    }
    if (obs::statsEnabled()) {
        auto stats = out.automaton.stats();
        auto &registry = obs::MetricsRegistry::instance();
        registry.gauge("compile.stes")
            .set(static_cast<double>(stats.stes));
        registry.gauge("compile.counters")
            .set(static_cast<double>(stats.counters));
        registry.gauge("compile.gates")
            .set(static_cast<double>(stats.gates));
        registry.gauge("compile.edges")
            .set(static_cast<double>(stats.edges));
        registry.gauge("compile.reporting")
            .set(static_cast<double>(stats.reporting));
        registry.gauge("compile.tile_instances")
            .set(static_cast<double>(out.tileInstances));
    }
    return out;
}

CompiledProgram
compileSource(const std::string &source,
              const std::vector<Value> &network_args,
              const CompileOptions &options)
{
    Program program = parseProgram(source);
    return compileProgram(program, network_args, options);
}

} // namespace rapid::lang
