/**
 * @file
 * Token definitions for the RAPID lexer.
 */
#ifndef RAPID_LANG_TOKEN_H
#define RAPID_LANG_TOKEN_H

#include <cstdint>
#include <string>

#include "support/error.h"

namespace rapid::lang {

enum class TokenKind {
    // Literals and identifiers.
    Identifier,
    IntLiteral,
    CharLiteral,
    StringLiteral,

    // Keywords.
    KwMacro,
    KwNetwork,
    KwIf,
    KwElse,
    KwWhile,
    KwForeach,
    KwSome,
    KwEither,
    KwOrelse,
    KwWhenever,
    KwReport,
    KwInt,
    KwChar,
    KwBool,
    KwString,
    KwCounter,
    KwTrue,
    KwFalse,
    KwAllInput,
    KwStartOfInput,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Colon,
    Dot,
    Assign,
    EqEq,
    NotEq,
    Less,
    LessEq,
    Greater,
    GreaterEq,
    AndAnd,
    OrOr,
    Bang,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,

    EndOfFile,
};

/** Human-readable token-kind name for diagnostics. */
const char *tokenKindName(TokenKind kind);

/** One lexed token. */
struct Token {
    TokenKind kind = TokenKind::EndOfFile;
    SourceLoc loc;
    /** Identifier or string-literal text. */
    std::string text;
    /** Integer literal value. */
    int64_t intValue = 0;
    /** Character literal value. */
    unsigned char charValue = 0;
};

} // namespace rapid::lang

#endif // RAPID_LANG_TOKEN_H
