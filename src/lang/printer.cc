#include "lang/printer.h"

#include "support/strings.h"

namespace rapid::lang {

namespace {

/** Operator precedence for minimal parenthesization. */
int
precedence(const Expr &expr)
{
    if (expr.kind == ExprKind::Unary)
        return 7;
    if (expr.kind != ExprKind::Binary)
        return 8; // primary/postfix
    switch (expr.bop) {
      case BinaryOp::Or:
        return 1;
      case BinaryOp::And:
        return 2;
      case BinaryOp::Eq:
      case BinaryOp::Ne:
        return 3;
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
        return 4;
      case BinaryOp::Add:
      case BinaryOp::Sub:
        return 5;
      case BinaryOp::Mul:
      case BinaryOp::Div:
      case BinaryOp::Mod:
        return 6;
    }
    return 8;
}

const char *
opSpelling(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Or:
        return "||";
      case BinaryOp::And:
        return "&&";
      case BinaryOp::Eq:
        return "==";
      case BinaryOp::Ne:
        return "!=";
      case BinaryOp::Lt:
        return "<";
      case BinaryOp::Le:
        return "<=";
      case BinaryOp::Gt:
        return ">";
      case BinaryOp::Ge:
        return ">=";
      case BinaryOp::Add:
        return "+";
      case BinaryOp::Sub:
        return "-";
      case BinaryOp::Mul:
        return "*";
      case BinaryOp::Div:
        return "/";
      case BinaryOp::Mod:
        return "%";
    }
    return "?";
}

/** Print @p child parenthesized when looser than the context. */
std::string
childExpr(const Expr &child, int context)
{
    std::string text = printExpr(child);
    if (precedence(child) < context)
        return "(" + text + ")";
    return text;
}

std::string
indentStr(int indent)
{
    return std::string(static_cast<size_t>(indent) * 4, ' ');
}

std::string
printBody(const std::vector<StmtPtr> &body, int indent)
{
    std::string out = "{\n";
    for (const StmtPtr &stmt : body)
        out += printStmt(*stmt, indent + 1);
    out += indentStr(indent) + "}";
    return out;
}

} // namespace

std::string
printExpr(const Expr &expr)
{
    switch (expr.kind) {
      case ExprKind::IntLit:
        return std::to_string(expr.intValue);
      case ExprKind::BoolLit:
        return expr.boolValue ? "true" : "false";
      case ExprKind::CharLit:
        switch (expr.charValue.kind) {
          case CharSpec::Kind::AllInput:
            return "ALL_INPUT";
          case CharSpec::Kind::StartOfInput:
            return "START_OF_INPUT";
          case CharSpec::Kind::Literal:
            return "'" + escapeByte(expr.charValue.value) + "'";
        }
        return "'?'";
      case ExprKind::StringLit:
        return "\"" + escapeString(expr.text) + "\"";
      case ExprKind::ArrayLit: {
        std::string out = "{";
        for (size_t i = 0; i < expr.args.size(); ++i) {
            if (i)
                out += ", ";
            out += printExpr(*expr.args[i]);
        }
        return out + "}";
      }
      case ExprKind::Var:
        return expr.text;
      case ExprKind::Index:
        return childExpr(*expr.args[0], 8) + "[" +
               printExpr(*expr.args[1]) + "]";
      case ExprKind::Unary:
        return (expr.uop == UnaryOp::Not ? "!" : "-") +
               childExpr(*expr.args[0], 7);
      case ExprKind::Binary: {
        int level = precedence(expr);
        // Left-associative: the right child needs parens at equal
        // precedence.
        return childExpr(*expr.args[0], level) + " " +
               opSpelling(expr.bop) + " " +
               childExpr(*expr.args[1], level + 1);
      }
      case ExprKind::Call: {
        std::string out = expr.text + "(";
        for (size_t i = 0; i < expr.args.size(); ++i) {
            if (i)
                out += ", ";
            out += printExpr(*expr.args[i]);
        }
        return out + ")";
      }
      case ExprKind::Method: {
        std::string out =
            childExpr(*expr.args[0], 8) + "." + expr.text + "(";
        for (size_t i = 1; i < expr.args.size(); ++i) {
            if (i > 1)
                out += ", ";
            out += printExpr(*expr.args[i]);
        }
        return out + ")";
      }
    }
    return "?";
}

std::string
printStmt(const Stmt &stmt, int indent)
{
    std::string pad = indentStr(indent);
    switch (stmt.kind) {
      case StmtKind::VarDecl: {
        std::string out = pad + stmt.declType.str() + " " + stmt.name;
        if (stmt.expr)
            out += " = " + printExpr(*stmt.expr);
        return out + ";\n";
      }
      case StmtKind::Assign:
        return pad + printExpr(*stmt.target) + " = " +
               printExpr(*stmt.expr) + ";\n";
      case StmtKind::Expr:
        return pad + printExpr(*stmt.expr) + ";\n";
      case StmtKind::Report:
        return pad + "report;\n";
      case StmtKind::If: {
        std::string out = pad + "if (" + printExpr(*stmt.expr) + ") " +
                          printBody(stmt.body, indent);
        if (!stmt.orelse.empty())
            out += " else " + printBody(stmt.orelse, indent);
        return out + "\n";
      }
      case StmtKind::While:
        if (stmt.body.empty()) {
            return pad + "while (" + printExpr(*stmt.expr) + ");\n";
        }
        return pad + "while (" + printExpr(*stmt.expr) + ") " +
               printBody(stmt.body, indent) + "\n";
      case StmtKind::Foreach:
      case StmtKind::Some: {
        const char *keyword =
            stmt.kind == StmtKind::Foreach ? "foreach" : "some";
        return pad + keyword + " (" + stmt.declType.str() + " " +
               stmt.name + " : " + printExpr(*stmt.expr) + ") " +
               printBody(stmt.body, indent) + "\n";
      }
      case StmtKind::Either: {
        std::string out = pad + "either ";
        for (size_t i = 0; i < stmt.body.size(); ++i) {
            if (i)
                out += " orelse ";
            out += printBody(stmt.body[i]->body, indent);
        }
        return out + "\n";
      }
      case StmtKind::Whenever:
        return pad + "whenever (" + printExpr(*stmt.expr) + ") " +
               printBody(stmt.body, indent) + "\n";
      case StmtKind::Block:
        return pad + printBody(stmt.body, indent) + "\n";
    }
    return pad + "?;\n";
}

namespace {

std::string
printMacro(const MacroDecl &macro, bool is_network)
{
    std::string out =
        is_network ? "network (" : "macro " + macro.name + "(";
    for (size_t i = 0; i < macro.params.size(); ++i) {
        if (i)
            out += ", ";
        out += macro.params[i].type.str() + " " + macro.params[i].name;
    }
    out += ") {\n";
    for (const StmtPtr &stmt : macro.body)
        out += printStmt(*stmt, 1);
    out += "}\n";
    return out;
}

} // namespace

std::string
printProgram(const Program &program)
{
    std::string out;
    for (const MacroDecl &macro : program.macros) {
        out += printMacro(macro, false);
        out += "\n";
    }
    out += printMacro(program.network, true);
    return out;
}

bool
sameExpr(const Expr &a, const Expr &b)
{
    if (a.kind != b.kind || a.args.size() != b.args.size())
        return false;
    switch (a.kind) {
      case ExprKind::IntLit:
        if (a.intValue != b.intValue)
            return false;
        break;
      case ExprKind::BoolLit:
        if (a.boolValue != b.boolValue)
            return false;
        break;
      case ExprKind::CharLit:
        if (!(a.charValue == b.charValue))
            return false;
        break;
      case ExprKind::StringLit:
      case ExprKind::Var:
      case ExprKind::Call:
      case ExprKind::Method:
        if (a.text != b.text)
            return false;
        break;
      case ExprKind::Unary:
        if (a.uop != b.uop)
            return false;
        break;
      case ExprKind::Binary:
        if (a.bop != b.bop)
            return false;
        break;
      case ExprKind::ArrayLit:
      case ExprKind::Index:
        break;
    }
    for (size_t i = 0; i < a.args.size(); ++i) {
        if (!sameExpr(*a.args[i], *b.args[i]))
            return false;
    }
    return true;
}

namespace {

bool
sameBody(const std::vector<StmtPtr> &a, const std::vector<StmtPtr> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (!sameStmt(*a[i], *b[i]))
            return false;
    }
    return true;
}

} // namespace

bool
sameStmt(const Stmt &a, const Stmt &b)
{
    if (a.kind != b.kind || a.name != b.name ||
        !(a.declType == b.declType)) {
        return false;
    }
    if ((a.expr == nullptr) != (b.expr == nullptr))
        return false;
    if (a.expr && !sameExpr(*a.expr, *b.expr))
        return false;
    if ((a.target == nullptr) != (b.target == nullptr))
        return false;
    if (a.target && !sameExpr(*a.target, *b.target))
        return false;
    return sameBody(a.body, b.body) && sameBody(a.orelse, b.orelse);
}

bool
sameAst(const Program &a, const Program &b)
{
    if (a.macros.size() != b.macros.size())
        return false;
    for (size_t i = 0; i < a.macros.size(); ++i) {
        const MacroDecl &ma = a.macros[i];
        const MacroDecl &mb = b.macros[i];
        if (ma.name != mb.name ||
            ma.params.size() != mb.params.size())
            return false;
        for (size_t p = 0; p < ma.params.size(); ++p) {
            if (ma.params[p].name != mb.params[p].name ||
                !(ma.params[p].type == mb.params[p].type))
                return false;
        }
        if (!sameBody(ma.body, mb.body))
            return false;
    }
    if (a.network.params.size() != b.network.params.size())
        return false;
    for (size_t p = 0; p < a.network.params.size(); ++p) {
        if (a.network.params[p].name != b.network.params[p].name ||
            !(a.network.params[p].type == b.network.params[p].type))
            return false;
    }
    return sameBody(a.network.body, b.network.body);
}

} // namespace rapid::lang
