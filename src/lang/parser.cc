#include "lang/parser.h"

#include "lang/lexer.h"
#include "obs/trace.h"

namespace rapid::lang {

namespace {

class Parser {
  public:
    explicit Parser(std::vector<Token> tokens) : _tokens(std::move(tokens))
    {
    }

    Program
    parseProgram()
    {
        Program program;
        bool have_network = false;
        while (!at(TokenKind::EndOfFile)) {
            if (at(TokenKind::KwMacro)) {
                program.macros.push_back(parseMacro());
            } else if (at(TokenKind::KwNetwork)) {
                if (have_network) {
                    fail("a RAPID program defines exactly one network");
                }
                program.network = parseNetwork();
                have_network = true;
            } else {
                fail("expected 'macro' or 'network'");
            }
        }
        if (!have_network)
            fail("program has no network definition");
        return program;
    }

    ExprPtr
    parseSingleExpression()
    {
        auto expr = parseExpr();
        expect(TokenKind::EndOfFile);
        return expr;
    }

  private:
    const Token &peek() const { return _tokens[_pos]; }

    const Token &
    peekAt(size_t ahead) const
    {
        size_t i = _pos + ahead;
        return i < _tokens.size() ? _tokens[i] : _tokens.back();
    }

    bool at(TokenKind kind) const { return peek().kind == kind; }

    Token
    advance()
    {
        Token token = _tokens[_pos];
        if (_pos + 1 < _tokens.size())
            ++_pos;
        return token;
    }

    bool
    accept(TokenKind kind)
    {
        if (at(kind)) {
            advance();
            return true;
        }
        return false;
    }

    Token
    expect(TokenKind kind)
    {
        if (!at(kind)) {
            fail(std::string("expected ") + tokenKindName(kind) +
                 " but found " + tokenKindName(peek().kind));
        }
        return advance();
    }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw CompileError(msg, peek().loc);
    }

    bool
    atTypeKeyword() const
    {
        switch (peek().kind) {
          case TokenKind::KwInt:
          case TokenKind::KwChar:
          case TokenKind::KwBool:
          case TokenKind::KwString:
          case TokenKind::KwCounter:
            return true;
          default:
            return false;
        }
    }

    Type
    parseType()
    {
        BaseType base;
        switch (peek().kind) {
          case TokenKind::KwInt:
            base = BaseType::Int;
            break;
          case TokenKind::KwChar:
            base = BaseType::Char;
            break;
          case TokenKind::KwBool:
            base = BaseType::Bool;
            break;
          case TokenKind::KwString:
            base = BaseType::String;
            break;
          case TokenKind::KwCounter:
            base = BaseType::Counter;
            break;
          default:
            fail("expected a type name");
        }
        advance();
        int depth = 0;
        while (at(TokenKind::LBracket) &&
               peekAt(1).kind == TokenKind::RBracket) {
            advance();
            advance();
            ++depth;
        }
        return Type(base, depth);
    }

    std::vector<Param>
    parseParams()
    {
        std::vector<Param> params;
        expect(TokenKind::LParen);
        if (accept(TokenKind::RParen))
            return params;
        while (true) {
            Param param;
            param.loc = peek().loc;
            param.type = parseType();
            param.name = expect(TokenKind::Identifier).text;
            params.push_back(std::move(param));
            if (accept(TokenKind::RParen))
                return params;
            expect(TokenKind::Comma);
        }
    }

    MacroDecl
    parseMacro()
    {
        MacroDecl macro;
        macro.loc = peek().loc;
        expect(TokenKind::KwMacro);
        macro.name = expect(TokenKind::Identifier).text;
        macro.params = parseParams();
        macro.body = parseBlockBody();
        return macro;
    }

    MacroDecl
    parseNetwork()
    {
        MacroDecl network;
        network.loc = peek().loc;
        expect(TokenKind::KwNetwork);
        network.name = "network";
        network.params = parseParams();
        network.body = parseBlockBody();
        return network;
    }

    std::vector<StmtPtr>
    parseBlockBody()
    {
        expect(TokenKind::LBrace);
        std::vector<StmtPtr> body;
        while (!accept(TokenKind::RBrace)) {
            if (at(TokenKind::EndOfFile))
                fail("unterminated block");
            body.push_back(parseStmt());
        }
        return body;
    }

    /** Wrap a single statement as a one-element body list. */
    std::vector<StmtPtr>
    parseBody()
    {
        std::vector<StmtPtr> body;
        if (at(TokenKind::LBrace)) {
            return parseBlockBody();
        }
        body.push_back(parseStmt());
        return body;
    }

    StmtPtr
    makeStmt(StmtKind kind, SourceLoc loc)
    {
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = kind;
        stmt->loc = loc;
        return stmt;
    }

    StmtPtr
    parseStmt()
    {
        SourceLoc loc = peek().loc;
        switch (peek().kind) {
          case TokenKind::LBrace: {
            auto stmt = makeStmt(StmtKind::Block, loc);
            stmt->body = parseBlockBody();
            return stmt;
          }
          case TokenKind::KwReport: {
            advance();
            expect(TokenKind::Semicolon);
            return makeStmt(StmtKind::Report, loc);
          }
          case TokenKind::KwIf: {
            advance();
            auto stmt = makeStmt(StmtKind::If, loc);
            expect(TokenKind::LParen);
            stmt->expr = parseExpr();
            expect(TokenKind::RParen);
            stmt->body = parseBody();
            if (accept(TokenKind::KwElse))
                stmt->orelse = parseBody();
            return stmt;
          }
          case TokenKind::KwWhile: {
            advance();
            auto stmt = makeStmt(StmtKind::While, loc);
            expect(TokenKind::LParen);
            stmt->expr = parseExpr();
            expect(TokenKind::RParen);
            if (accept(TokenKind::Semicolon))
                return stmt; // empty body: while (...) ;
            stmt->body = parseBody();
            return stmt;
          }
          case TokenKind::KwForeach:
          case TokenKind::KwSome: {
            bool is_some = peek().kind == TokenKind::KwSome;
            advance();
            auto stmt = makeStmt(
                is_some ? StmtKind::Some : StmtKind::Foreach, loc);
            expect(TokenKind::LParen);
            stmt->declType = parseType();
            stmt->name = expect(TokenKind::Identifier).text;
            expect(TokenKind::Colon);
            stmt->expr = parseExpr();
            expect(TokenKind::RParen);
            stmt->body = parseBody();
            return stmt;
          }
          case TokenKind::KwEither: {
            advance();
            auto stmt = makeStmt(StmtKind::Either, loc);
            auto arm = makeStmt(StmtKind::Block, loc);
            arm->body = parseBlockBody();
            stmt->body.push_back(std::move(arm));
            if (!at(TokenKind::KwOrelse))
                fail("either requires at least one orelse block");
            while (accept(TokenKind::KwOrelse)) {
                auto next = makeStmt(StmtKind::Block, peek().loc);
                next->body = parseBlockBody();
                stmt->body.push_back(std::move(next));
            }
            return stmt;
          }
          case TokenKind::KwWhenever: {
            advance();
            auto stmt = makeStmt(StmtKind::Whenever, loc);
            expect(TokenKind::LParen);
            stmt->expr = parseExpr();
            expect(TokenKind::RParen);
            stmt->body = parseBody();
            return stmt;
          }
          default:
            break;
        }

        if (atTypeKeyword())
            return parseVarDecl();

        // Assignment or expression statement.
        if (at(TokenKind::Identifier)) {
            // Lookahead for "ID =", "ID [ ... ] =" handled by trying an
            // assignment when the immediate next token is '=' (index
            // assignments are parsed through the expression then
            // rewritten).
            if (peekAt(1).kind == TokenKind::Assign) {
                auto stmt = makeStmt(StmtKind::Assign, loc);
                auto target = std::make_unique<Expr>();
                target->kind = ExprKind::Var;
                target->loc = loc;
                target->text = advance().text;
                stmt->target = std::move(target);
                expect(TokenKind::Assign);
                stmt->expr = parseExpr();
                expect(TokenKind::Semicolon);
                return stmt;
            }
        }

        auto stmt = makeStmt(StmtKind::Expr, loc);
        stmt->expr = parseExpr();
        if (at(TokenKind::Assign)) {
            // Index assignment: lhs already parsed as an expression.
            if (stmt->expr->kind != ExprKind::Index)
                fail("invalid assignment target");
            advance();
            auto assign = makeStmt(StmtKind::Assign, loc);
            assign->target = std::move(stmt->expr);
            assign->expr = parseExpr();
            expect(TokenKind::Semicolon);
            return assign;
        }
        expect(TokenKind::Semicolon);
        return stmt;
    }

    StmtPtr
    parseVarDecl()
    {
        SourceLoc loc = peek().loc;
        auto stmt = makeStmt(StmtKind::VarDecl, loc);
        stmt->declType = parseType();
        stmt->name = expect(TokenKind::Identifier).text;
        if (accept(TokenKind::Assign))
            stmt->expr = parseInitializer();
        expect(TokenKind::Semicolon);
        return stmt;
    }

    /** An initializer: an expression or a brace-delimited array. */
    ExprPtr
    parseInitializer()
    {
        if (!at(TokenKind::LBrace))
            return parseExpr();
        SourceLoc loc = peek().loc;
        advance();
        auto lit = std::make_unique<Expr>();
        lit->kind = ExprKind::ArrayLit;
        lit->loc = loc;
        if (accept(TokenKind::RBrace))
            return lit;
        while (true) {
            lit->args.push_back(parseInitializer());
            if (accept(TokenKind::RBrace))
                return lit;
            expect(TokenKind::Comma);
        }
    }

    ExprPtr
    makeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc)
    {
        auto expr = std::make_unique<Expr>();
        expr->kind = ExprKind::Binary;
        expr->bop = op;
        expr->loc = loc;
        expr->args.push_back(std::move(lhs));
        expr->args.push_back(std::move(rhs));
        return expr;
    }

    ExprPtr
    parseExpr()
    {
        return parseOr();
    }

    ExprPtr
    parseOr()
    {
        auto lhs = parseAnd();
        while (at(TokenKind::OrOr)) {
            SourceLoc loc = advance().loc;
            lhs = makeBinary(BinaryOp::Or, std::move(lhs), parseAnd(),
                             loc);
        }
        return lhs;
    }

    ExprPtr
    parseAnd()
    {
        auto lhs = parseEquality();
        while (at(TokenKind::AndAnd)) {
            SourceLoc loc = advance().loc;
            lhs = makeBinary(BinaryOp::And, std::move(lhs),
                             parseEquality(), loc);
        }
        return lhs;
    }

    ExprPtr
    parseEquality()
    {
        auto lhs = parseRelational();
        while (at(TokenKind::EqEq) || at(TokenKind::NotEq)) {
            BinaryOp op = at(TokenKind::EqEq) ? BinaryOp::Eq : BinaryOp::Ne;
            SourceLoc loc = advance().loc;
            lhs = makeBinary(op, std::move(lhs), parseRelational(), loc);
        }
        return lhs;
    }

    ExprPtr
    parseRelational()
    {
        auto lhs = parseAdditive();
        while (true) {
            BinaryOp op;
            switch (peek().kind) {
              case TokenKind::Less:
                op = BinaryOp::Lt;
                break;
              case TokenKind::LessEq:
                op = BinaryOp::Le;
                break;
              case TokenKind::Greater:
                op = BinaryOp::Gt;
                break;
              case TokenKind::GreaterEq:
                op = BinaryOp::Ge;
                break;
              default:
                return lhs;
            }
            SourceLoc loc = advance().loc;
            lhs = makeBinary(op, std::move(lhs), parseAdditive(), loc);
        }
    }

    ExprPtr
    parseAdditive()
    {
        auto lhs = parseMultiplicative();
        while (at(TokenKind::Plus) || at(TokenKind::Minus)) {
            BinaryOp op =
                at(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
            SourceLoc loc = advance().loc;
            lhs = makeBinary(op, std::move(lhs), parseMultiplicative(),
                             loc);
        }
        return lhs;
    }

    ExprPtr
    parseMultiplicative()
    {
        auto lhs = parseUnary();
        while (true) {
            BinaryOp op;
            switch (peek().kind) {
              case TokenKind::Star:
                op = BinaryOp::Mul;
                break;
              case TokenKind::Slash:
                op = BinaryOp::Div;
                break;
              case TokenKind::Percent:
                op = BinaryOp::Mod;
                break;
              default:
                return lhs;
            }
            SourceLoc loc = advance().loc;
            lhs = makeBinary(op, std::move(lhs), parseUnary(), loc);
        }
    }

    ExprPtr
    parseUnary()
    {
        if (at(TokenKind::Bang) || at(TokenKind::Minus)) {
            UnaryOp op =
                at(TokenKind::Bang) ? UnaryOp::Not : UnaryOp::Neg;
            SourceLoc loc = advance().loc;
            auto expr = std::make_unique<Expr>();
            expr->kind = ExprKind::Unary;
            expr->uop = op;
            expr->loc = loc;
            expr->args.push_back(parseUnary());
            return expr;
        }
        return parsePostfix();
    }

    ExprPtr
    parsePostfix()
    {
        auto expr = parsePrimary();
        while (true) {
            if (at(TokenKind::LBracket)) {
                SourceLoc loc = advance().loc;
                auto index = std::make_unique<Expr>();
                index->kind = ExprKind::Index;
                index->loc = loc;
                index->args.push_back(std::move(expr));
                index->args.push_back(parseExpr());
                expect(TokenKind::RBracket);
                expr = std::move(index);
            } else if (at(TokenKind::Dot)) {
                SourceLoc loc = advance().loc;
                auto method = std::make_unique<Expr>();
                method->kind = ExprKind::Method;
                method->loc = loc;
                method->text = expect(TokenKind::Identifier).text;
                method->args.push_back(std::move(expr));
                expect(TokenKind::LParen);
                if (!accept(TokenKind::RParen)) {
                    while (true) {
                        method->args.push_back(parseExpr());
                        if (accept(TokenKind::RParen))
                            break;
                        expect(TokenKind::Comma);
                    }
                }
                expr = std::move(method);
            } else {
                return expr;
            }
        }
    }

    ExprPtr
    parsePrimary()
    {
        SourceLoc loc = peek().loc;
        auto expr = std::make_unique<Expr>();
        expr->loc = loc;
        switch (peek().kind) {
          case TokenKind::IntLiteral:
            expr->kind = ExprKind::IntLit;
            expr->intValue = advance().intValue;
            return expr;
          case TokenKind::CharLiteral:
            expr->kind = ExprKind::CharLit;
            expr->charValue =
                CharSpec{CharSpec::Kind::Literal, advance().charValue};
            return expr;
          case TokenKind::StringLiteral:
            expr->kind = ExprKind::StringLit;
            expr->text = advance().text;
            return expr;
          case TokenKind::KwTrue:
            advance();
            expr->kind = ExprKind::BoolLit;
            expr->boolValue = true;
            return expr;
          case TokenKind::KwFalse:
            advance();
            expr->kind = ExprKind::BoolLit;
            expr->boolValue = false;
            return expr;
          case TokenKind::KwAllInput:
            advance();
            expr->kind = ExprKind::CharLit;
            expr->charValue = CharSpec{CharSpec::Kind::AllInput, 0};
            return expr;
          case TokenKind::KwStartOfInput:
            advance();
            expr->kind = ExprKind::CharLit;
            expr->charValue = CharSpec{CharSpec::Kind::StartOfInput,
                                       kStartOfInputSymbol};
            return expr;
          case TokenKind::Identifier: {
            std::string name = advance().text;
            if (at(TokenKind::LParen)) {
                advance();
                expr->kind = ExprKind::Call;
                expr->text = std::move(name);
                if (!accept(TokenKind::RParen)) {
                    while (true) {
                        expr->args.push_back(parseExpr());
                        if (accept(TokenKind::RParen))
                            break;
                        expect(TokenKind::Comma);
                    }
                }
                return expr;
            }
            expr->kind = ExprKind::Var;
            expr->text = std::move(name);
            return expr;
          }
          case TokenKind::LParen: {
            advance();
            auto inner = parseExpr();
            expect(TokenKind::RParen);
            return inner;
          }
          default:
            fail(std::string("expected an expression, found ") +
                 tokenKindName(peek().kind));
        }
    }

    std::vector<Token> _tokens;
    size_t _pos = 0;
};

} // namespace

Program
parseProgram(const std::string &source)
{
    obs::Span span("parse");
    return Parser(tokenize(source)).parseProgram();
}

ExprPtr
parseExpression(const std::string &source)
{
    return Parser(tokenize(source)).parseSingleExpression();
}

} // namespace rapid::lang
