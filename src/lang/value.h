/**
 * @file
 * Compile-time values for RAPID's staged evaluation.
 *
 * Under the staged-computation model (§5), every expression that is not
 * typed Automata/CounterExpr is evaluated during compilation.  Value is
 * the dynamic representation those evaluations produce: ints, bools,
 * chars (including the ALL_INPUT / START_OF_INPUT specials), strings,
 * nested arrays, and references to Counter objects.
 *
 * Network arguments (the paper's "file annotating properties of the
 * arguments to the network parameters") are supplied as Values by the
 * embedding application.
 */
#ifndef RAPID_LANG_VALUE_H
#define RAPID_LANG_VALUE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lang/ast.h"
#include "lang/types.h"
#include "support/error.h"

namespace rapid::lang {

struct Value;
using ValueList = std::vector<Value>;

/** A compile-time RAPID value. */
struct Value {
    Type type = Type::voidT();

    int64_t i = 0;
    bool b = false;
    CharSpec c;
    std::string s;
    /** Array payload (shared so assignment into arrays is visible). */
    std::shared_ptr<ValueList> arr;
    /** Index into the code generator's counter registry. */
    uint32_t counter = UINT32_MAX;

    static Value
    integer(int64_t value)
    {
        Value v;
        v.type = Type::intT();
        v.i = value;
        return v;
    }

    static Value
    boolean(bool value)
    {
        Value v;
        v.type = Type::boolT();
        v.b = value;
        return v;
    }

    static Value
    character(CharSpec value)
    {
        Value v;
        v.type = Type::charT();
        v.c = value;
        return v;
    }

    static Value
    character(char value)
    {
        return character(CharSpec{CharSpec::Kind::Literal,
                                  static_cast<unsigned char>(value)});
    }

    static Value
    str(std::string value)
    {
        Value v;
        v.type = Type::stringT();
        v.s = std::move(value);
        return v;
    }

    /** An array of @p items with element type @p element. */
    static Value
    array(Type element, ValueList items)
    {
        Value v;
        v.type = Type(element.base, element.arrayDepth + 1);
        v.arr = std::make_shared<ValueList>(std::move(items));
        return v;
    }

    /** Convenience: a String[] from a list of C++ strings. */
    static Value
    strArray(const std::vector<std::string> &items)
    {
        ValueList list;
        list.reserve(items.size());
        for (const std::string &item : items)
            list.push_back(Value::str(item));
        return array(Type::stringT(), std::move(list));
    }

    /** Convenience: an int[] from a list of integers. */
    static Value
    intArray(const std::vector<int64_t> &items)
    {
        ValueList list;
        list.reserve(items.size());
        for (int64_t item : items)
            list.push_back(Value::integer(item));
        return array(Type::intT(), std::move(list));
    }

    static Value
    counterRef(uint32_t index)
    {
        Value v;
        v.type = Type::counterT();
        v.counter = index;
        return v;
    }

    /** Render for diagnostics. */
    std::string str() const;

    /** Equality for compile-time == / != (throws for Counter). */
    bool equals(const Value &other) const;
};

} // namespace rapid::lang

#endif // RAPID_LANG_VALUE_H
