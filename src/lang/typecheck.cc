#include "lang/typecheck.h"

#include <unordered_map>
#include <vector>

namespace rapid::lang {

namespace {

class TypeChecker {
  public:
    explicit TypeChecker(Program &program) : _program(program) {}

    void
    run()
    {
        for (MacroDecl &macro : _program.macros) {
            if (_program.network.name == macro.name) {
                throw CompileError("macro '" + macro.name +
                                       "' shadows the network",
                                   macro.loc);
            }
            checkMacro(macro);
        }
        checkMacro(_program.network);
    }

  private:
    [[noreturn]] static void
    fail(const std::string &msg, SourceLoc loc)
    {
        throw CompileError(msg, loc);
    }

    void
    checkMacro(MacroDecl &macro)
    {
        _scopes.clear();
        pushScope();
        for (const Param &param : macro.params) {
            if (param.type.runtime() || param.type.base == BaseType::Void)
                fail("invalid parameter type", param.loc);
            declare(param.name, param.type, param.loc);
        }
        for (StmtPtr &stmt : macro.body)
            checkStmt(*stmt);
        popScope();
    }

    void pushScope() { _scopes.emplace_back(); }
    void popScope() { _scopes.pop_back(); }

    void
    declare(const std::string &name, Type type, SourceLoc loc)
    {
        if (_scopes.back().count(name))
            fail("redefinition of '" + name + "'", loc);
        if (_program.findMacro(name) != nullptr)
            fail("'" + name + "' shadows a macro", loc);
        _scopes.back().emplace(name, type);
    }

    const Type *
    lookup(const std::string &name) const
    {
        for (auto it = _scopes.rbegin(); it != _scopes.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return &found->second;
        }
        return nullptr;
    }

    /// Statement checking -------------------------------------------------

    void
    checkBody(std::vector<StmtPtr> &body)
    {
        pushScope();
        for (StmtPtr &stmt : body)
            checkStmt(*stmt);
        popScope();
    }

    void
    checkCondition(Expr &cond, bool allow_bool)
    {
        Type type = checkExpr(cond);
        if (type == Type::automataT() || type == Type::counterExprT())
            return;
        if (allow_bool && type == Type::boolT())
            return;
        fail("condition has type " + type.str() +
                 (allow_bool ? "; expected bool, input comparison, or "
                               "counter check"
                             : "; expected input comparison or counter "
                               "check"),
             cond.loc);
    }

    void
    checkStmt(Stmt &stmt)
    {
        switch (stmt.kind) {
          case StmtKind::VarDecl: {
            Type declared = stmt.declType;
            if (declared.base == BaseType::Counter && declared.isArray())
                fail("Counter arrays are not supported", stmt.loc);
            if (stmt.expr) {
                if (declared.base == BaseType::Counter) {
                    fail("Counter variables cannot be initialized",
                         stmt.loc);
                }
                Type init = checkInitializer(*stmt.expr, declared);
                if (!(init == declared)) {
                    fail("cannot initialize " + declared.str() +
                             " from " + init.str(),
                         stmt.loc);
                }
            } else if (declared.isArray()) {
                fail("array variable '" + stmt.name +
                         "' requires an initializer",
                     stmt.loc);
            }
            declare(stmt.name, declared, stmt.loc);
            return;
          }
          case StmtKind::Assign: {
            Type target = checkExpr(*stmt.target);
            if (stmt.target->kind != ExprKind::Var &&
                stmt.target->kind != ExprKind::Index)
                fail("invalid assignment target", stmt.loc);
            if (target.base == BaseType::Counter)
                fail("Counter variables cannot be assigned", stmt.loc);
            Type value = checkExpr(*stmt.expr);
            if (!(value == target)) {
                fail("cannot assign " + value.str() + " to " +
                         target.str(),
                     stmt.loc);
            }
            return;
          }
          case StmtKind::Expr: {
            Type type = checkExpr(*stmt.expr);
            if (type == Type::automataT() ||
                type == Type::counterExprT() || type == Type::boolT() ||
                type == Type::voidT()) {
                return;
            }
            fail("expression statement has type " + type.str() +
                     "; only boolean assertions and calls are "
                     "meaningful",
                 stmt.loc);
          }
          case StmtKind::Report:
            return;
          case StmtKind::If:
            checkCondition(*stmt.expr, /*allow_bool=*/true);
            checkBody(stmt.body);
            checkBody(stmt.orelse);
            return;
          case StmtKind::While:
            checkCondition(*stmt.expr, /*allow_bool=*/true);
            checkBody(stmt.body);
            return;
          case StmtKind::Foreach:
          case StmtKind::Some: {
            Type iterable = checkExpr(*stmt.expr);
            if (!iterable.iterable()) {
                fail("cannot iterate over " + iterable.str(),
                     stmt.expr->loc);
            }
            Type element = iterable.element();
            if (!(element == stmt.declType)) {
                fail("loop variable type " + stmt.declType.str() +
                         " does not match element type " + element.str(),
                     stmt.loc);
            }
            pushScope();
            declare(stmt.name, stmt.declType, stmt.loc);
            for (StmtPtr &inner : stmt.body)
                checkStmt(*inner);
            popScope();
            return;
          }
          case StmtKind::Either:
            for (StmtPtr &arm : stmt.body)
                checkBody(arm->body);
            return;
          case StmtKind::Whenever:
            checkCondition(*stmt.expr, /*allow_bool=*/false);
            checkBody(stmt.body);
            return;
          case StmtKind::Block:
            checkBody(stmt.body);
            return;
        }
    }

    /// Expression checking ------------------------------------------------

    Type
    checkInitializer(Expr &expr, Type expected)
    {
        if (expr.kind != ExprKind::ArrayLit)
            return checkExpr(expr);
        if (!expected.isArray())
            fail("array literal initializing non-array", expr.loc);
        Type element = expected.element();
        for (ExprPtr &item : expr.args) {
            Type got = checkInitializer(*item, element);
            if (!(got == element)) {
                fail("array element has type " + got.str() +
                         "; expected " + element.str(),
                     item->loc);
            }
        }
        expr.type = expected;
        return expected;
    }

    Type
    annotate(Expr &expr, Type type)
    {
        expr.type = type;
        return type;
    }

    Type
    checkExpr(Expr &expr)
    {
        switch (expr.kind) {
          case ExprKind::IntLit:
            return annotate(expr, Type::intT());
          case ExprKind::CharLit:
            return annotate(expr, Type::charT());
          case ExprKind::BoolLit:
            return annotate(expr, Type::boolT());
          case ExprKind::StringLit:
            return annotate(expr, Type::stringT());
          case ExprKind::ArrayLit:
            fail("array literals are only allowed in initializers",
                 expr.loc);
          case ExprKind::Var: {
            const Type *type = lookup(expr.text);
            if (type == nullptr)
                fail("undefined variable '" + expr.text + "'", expr.loc);
            return annotate(expr, *type);
          }
          case ExprKind::Index: {
            Type base = checkExpr(*expr.args[0]);
            if (!base.iterable())
                fail("cannot index " + base.str(), expr.loc);
            Type index = checkExpr(*expr.args[1]);
            if (!(index == Type::intT()))
                fail("index must be an int", expr.args[1]->loc);
            return annotate(expr, base.element());
          }
          case ExprKind::Unary:
            return checkUnary(expr);
          case ExprKind::Binary:
            return checkBinary(expr);
          case ExprKind::Call:
            return checkCall(expr);
          case ExprKind::Method:
            return checkMethod(expr);
        }
        fail("unhandled expression", expr.loc);
    }

    Type
    checkUnary(Expr &expr)
    {
        Type operand = checkExpr(*expr.args[0]);
        if (expr.uop == UnaryOp::Neg) {
            if (!(operand == Type::intT()))
                fail("unary '-' requires an int", expr.loc);
            return annotate(expr, Type::intT());
        }
        // UnaryOp::Not
        if (operand == Type::boolT() || operand == Type::automataT() ||
            operand == Type::counterExprT()) {
            return annotate(expr, operand);
        }
        fail("'!' requires bool, input comparison, or counter check",
             expr.loc);
    }

    static bool
    isComparison(BinaryOp op)
    {
        switch (op) {
          case BinaryOp::Eq:
          case BinaryOp::Ne:
          case BinaryOp::Lt:
          case BinaryOp::Le:
          case BinaryOp::Gt:
          case BinaryOp::Ge:
            return true;
          default:
            return false;
        }
    }

    Type
    checkBinary(Expr &expr)
    {
        Type lhs = checkExpr(*expr.args[0]);
        Type rhs = checkExpr(*expr.args[1]);
        BinaryOp op = expr.bop;

        if (op == BinaryOp::And || op == BinaryOp::Or) {
            auto logical = [](Type t) {
                return t == Type::boolT() || t == Type::automataT();
            };
            if (lhs == Type::counterExprT() || rhs == Type::counterExprT())
                fail("counter checks cannot be combined with && or || "
                     "(one threshold per counter, Table 2)",
                     expr.loc);
            if (!logical(lhs) || !logical(rhs))
                fail("'&&'/'||' require boolean operands", expr.loc);
            if (lhs == Type::automataT() || rhs == Type::automataT())
                return annotate(expr, Type::automataT());
            return annotate(expr, Type::boolT());
        }

        if (isComparison(op)) {
            // Stream comparisons.
            bool lhs_stream = lhs == Type::streamT();
            bool rhs_stream = rhs == Type::streamT();
            if (lhs_stream || rhs_stream) {
                if (lhs_stream && rhs_stream) {
                    fail("input() cannot be compared against input()",
                         expr.loc);
                }
                if (op != BinaryOp::Eq && op != BinaryOp::Ne) {
                    fail("input() supports only == and != comparisons",
                         expr.loc);
                }
                Type other = lhs_stream ? rhs : lhs;
                if (!(other == Type::charT())) {
                    fail("input() must be compared against a char, not " +
                             other.str(),
                         expr.loc);
                }
                return annotate(expr, Type::automataT());
            }
            // Counter comparisons.
            bool lhs_counter = lhs == Type::counterT();
            bool rhs_counter = rhs == Type::counterT();
            if (lhs_counter || rhs_counter) {
                if (lhs_counter && rhs_counter)
                    fail("cannot compare two Counters", expr.loc);
                Type other = lhs_counter ? rhs : lhs;
                if (!(other == Type::intT())) {
                    fail("Counter must be compared against an int",
                         expr.loc);
                }
                return annotate(expr, Type::counterExprT());
            }
            // Compile-time comparisons.
            if (!(lhs == rhs))
                fail("cannot compare " + lhs.str() + " with " + rhs.str(),
                     expr.loc);
            if (lhs.isArray())
                fail("arrays cannot be compared", expr.loc);
            if (lhs == Type::boolT() &&
                (op != BinaryOp::Eq && op != BinaryOp::Ne))
                fail("bools support only == and !=", expr.loc);
            if (lhs.base == BaseType::Automata)
                fail("input comparisons cannot be compared", expr.loc);
            return annotate(expr, Type::boolT());
        }

        // Arithmetic.
        if (lhs == Type::stringT() && rhs == Type::stringT() &&
            op == BinaryOp::Add) {
            return annotate(expr, Type::stringT());
        }
        if (!(lhs == Type::intT()) || !(rhs == Type::intT()))
            fail("arithmetic requires int operands", expr.loc);
        return annotate(expr, Type::intT());
    }

    Type
    checkCall(Expr &expr)
    {
        if (expr.text == "input") {
            if (!expr.args.empty())
                fail("input() takes no arguments", expr.loc);
            return annotate(expr, Type::streamT());
        }
        const MacroDecl *macro = _program.findMacro(expr.text);
        if (macro == nullptr)
            fail("call to undefined macro '" + expr.text + "'", expr.loc);
        if (expr.args.size() != macro->params.size()) {
            fail("macro '" + expr.text + "' expects " +
                     std::to_string(macro->params.size()) +
                     " arguments, got " + std::to_string(expr.args.size()),
                 expr.loc);
        }
        for (size_t i = 0; i < expr.args.size(); ++i) {
            Type got = checkExpr(*expr.args[i]);
            if (!(got == macro->params[i].type)) {
                fail("argument " + std::to_string(i + 1) + " of '" +
                         expr.text + "' has type " + got.str() +
                         "; expected " + macro->params[i].type.str(),
                     expr.args[i]->loc);
            }
        }
        return annotate(expr, Type::voidT());
    }

    Type
    checkMethod(Expr &expr)
    {
        Type receiver = checkExpr(*expr.args[0]);
        const std::string &name = expr.text;
        size_t argc = expr.args.size() - 1;
        if (receiver == Type::counterT()) {
            if (name == "count" || name == "reset") {
                if (argc != 0)
                    fail(name + "() takes no arguments", expr.loc);
                return annotate(expr, Type::voidT());
            }
            fail("Counter has no method '" + name + "'", expr.loc);
        }
        if (receiver.iterable()) {
            if (name == "length") {
                if (argc != 0)
                    fail("length() takes no arguments", expr.loc);
                return annotate(expr, Type::intT());
            }
            fail(receiver.str() + " has no method '" + name + "'",
                 expr.loc);
        }
        fail("type " + receiver.str() + " has no methods", expr.loc);
    }

    Program &_program;
    std::vector<std::unordered_map<std::string, Type>> _scopes;
};

} // namespace

void
typeCheck(Program &program)
{
    TypeChecker(program).run();
}

} // namespace rapid::lang
