/**
 * @file
 * Staged code generation: RAPID programs → homogeneous NFAs (§5).
 *
 * Compilation is a staged evaluation of the program.  Imperative
 * constructs (foreach, compile-time ifs and whiles, macro calls,
 * arithmetic) execute at compile time; declarative constructs (input
 * comparisons, counter checks, report) emit automaton structure.
 *
 * The evaluator threads a *frontier* through the statement sequence: the
 * set of automaton elements whose activation means "control has reached
 * this point".  Statement lowering follows Fig. 8; expression lowering
 * follows Fig. 7 (with De Morgan negation and star-state padding);
 * counter checks follow Table 2 and Fig. 9.
 *
 * Every RAPID program performs the implicit
 * `whenever (START_OF_INPUT == input())` sliding-window search of §3.3:
 * the first STE chain of each parallel branch is preceded by a
 * [\xFF]-matching, always-enabled guard STE — unless the branch begins
 * with an explicit whenever, which replaces the default window.
 */
#ifndef RAPID_LANG_CODEGEN_H
#define RAPID_LANG_CODEGEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "automata/automaton.h"
#include "automata/optimizer.h"
#include "lang/ast.h"
#include "lang/value.h"

namespace rapid::lang {

/** Code-generation options. */
struct CompileOptions {
    /** Run the automaton optimizer after generation. */
    bool optimize = true;

    /**
     * Optimizer configuration (weld budget, cross-component sharing);
     * only consulted when optimize is set.  Design-affecting: part of
     * the compile-cache key.
     */
    automata::OptimizeOptions optimizer;

    /**
     * Fold a top-level `whenever` guard into the start kind of its
     * entry STEs (dense form) instead of materializing the Fig. 8d
     * star STE.  Behaviourally equivalent; on by default.
     */
    bool foldStartWhenever = true;

    /**
     * Expand counters into positional encoding (§5.3's alternate
     * solution, implemented here although the paper's compiler did
     * not): counter- and boolean-free designs at ~(target+1)x the
     * states, avoiding the clock division that counter+inverter
     * designs pay (Table 5).  Unsupported counter shapes remain as
     * counters.
     */
    bool positionalCounters = false;

    /**
     * Compile only the tessellation tile (§6): skip the full network,
     * producing an empty `automaton` and a populated `tile`.  Used by
     * the Table-6 benches to time tile-only generation.
     */
    bool tileOnly = false;

    /**
     * Lower counter *assertions* through the §5.3 reserved-symbol
     * injection scheme instead of combinational gating.  Requires the
     * host to pre-transform the input stream (see host/transformer.h);
     * the compiler records the injection plan in
     * CompiledProgram::injections.
     */
    bool counterCheckViaInjection = false;
};

/** A §5.3 reserved-symbol injection requirement. */
struct SymbolInjection {
    /** The reserved symbol allocated for this counter check. */
    unsigned char symbol = 0;
    /**
     * Data symbols consumed between the start of a record (a
     * START_OF_INPUT separator) and the check; the host inserts the
     * symbol after this many symbols in every record.  0 means the
     * compiler could not infer the position (§5.3's compile-time
     * warning) and the developer must supply the pattern.
     */
    uint64_t period = 0;
    /** The RAPID Counter variable the check belongs to. */
    std::string counterName;
};

/** The result of compiling a RAPID program. */
struct CompiledProgram {
    automata::Automaton automaton;

    /**
     * Rewrites the optimizer applied to `automaton` (all zero when
     * CompileOptions::optimize was off).  Recorded into .apimg design
     * images so a loaded design carries its compile provenance.
     */
    automata::OptimizeStats optStats;

    /** Reserved-symbol injection plan (empty unless the option is on). */
    std::vector<SymbolInjection> injections;

    /**
     * Tessellation support (§6): the single-instance automaton for the
     * first top-level `some` iterating over a network parameter, and
     * the total number of instances the full design contains.  Empty /
     * zero when the heuristic found nothing to tile.
     */
    automata::Automaton tile;
    size_t tileInstances = 0;

    bool tileable() const { return tileInstances > 0; }
};

/**
 * Compile a type-checked program against concrete network arguments.
 *
 * @param program a parsed program; typeCheck() is (re)run internally.
 * @param network_args one Value per network parameter.
 * @throws rapid::CompileError for staging violations detectable only
 * with concrete values (array bounds, counter threshold conflicts,
 * non-uniform negation lengths, unbounded compile-time loops).
 */
CompiledProgram compileProgram(Program &program,
                               const std::vector<Value> &network_args,
                               const CompileOptions &options = {});

/** Parse + type-check + compile in one step. */
CompiledProgram compileSource(const std::string &source,
                              const std::vector<Value> &network_args,
                              const CompileOptions &options = {});

} // namespace rapid::lang

#endif // RAPID_LANG_CODEGEN_H
