#include "lang/value.h"

#include "support/strings.h"

namespace rapid::lang {

std::string
Value::str() const
{
    if (type.isArray()) {
        std::string out = "{";
        if (arr) {
            for (size_t i = 0; i < arr->size(); ++i) {
                if (i)
                    out += ", ";
                out += (*arr)[i].str();
            }
        }
        return out + "}";
    }
    switch (type.base) {
      case BaseType::Int:
        return std::to_string(i);
      case BaseType::Bool:
        return b ? "true" : "false";
      case BaseType::Char:
        switch (c.kind) {
          case CharSpec::Kind::AllInput:
            return "ALL_INPUT";
          case CharSpec::Kind::StartOfInput:
            return "START_OF_INPUT";
          case CharSpec::Kind::Literal:
            return "'" + escapeByte(c.value) + "'";
        }
        return "?";
      case BaseType::String:
        return "\"" + escapeString(s) + "\"";
      case BaseType::Counter:
        return "<Counter #" + std::to_string(counter) + ">";
      case BaseType::Void:
        return "<void>";
      default:
        return "<" + type.str() + ">";
    }
}

bool
Value::equals(const Value &other) const
{
    if (!(type == other.type))
        throw InternalError("comparing values of different types");
    if (type.isArray()) {
        if (!arr || !other.arr)
            return arr == other.arr;
        if (arr->size() != other.arr->size())
            return false;
        for (size_t i = 0; i < arr->size(); ++i) {
            if (!(*arr)[i].equals((*other.arr)[i]))
                return false;
        }
        return true;
    }
    switch (type.base) {
      case BaseType::Int:
        return i == other.i;
      case BaseType::Bool:
        return b == other.b;
      case BaseType::Char:
        return c == other.c;
      case BaseType::String:
        return s == other.s;
      case BaseType::Counter:
        throw InternalError("Counter values cannot be compared");
      default:
        throw InternalError("values of type " + type.str() +
                            " cannot be compared");
    }
}

} // namespace rapid::lang
