/**
 * @file
 * rapidd's long-lived match service.
 *
 * The server owns the shared loopback acceptor (obs/http.h) — so
 * `/metrics`, `/healthz`, `/profilez`, and the framed match protocol
 * (serve/protocol.h) all arrive on one port — plus a registry of
 * loaded designs and the per-session execution state.
 *
 * Design registry and hot reload.  Every loaded .apimg (preloaded at
 * startup, opened by path, or compiled from inline source through the
 * content-addressed CompileCache) becomes a LoadedDesign with a
 * monotonically increasing *epoch*.  Sessions pin the epoch they
 * opened against via shared_ptr: a RELOAD atomically rebinds the name
 * to a fresh LoadedDesign, so sessions opened before the reload finish
 * on the old design while sessions opened after see the new one — the
 * old epoch is destroyed when its last session closes.
 *
 * Execution.  One hot engine per design, built lazily per
 * configuration and shared across sessions:
 *
 *  - batch (the default): one compiled BatchSimulator per design
 *    epoch serves every session; each session is a multi-stream lane
 *    (a resumable Cursor), so FEED chunks execute incrementally and
 *    reports flow back with the FED ack;
 *  - scalar: a per-session lock-step Simulator stepped byte by byte —
 *    same incremental delivery, reference semantics;
 *  - sharded / parallel: these engines reconcile whole streams, so
 *    the session buffers its input (bounded by the byte quota) and
 *    runs a cached host::Device at CLOSE, delivering all reports with
 *    the CLOSED frame.
 *
 * Every engine produces the canonical (offset, element)-sorted report
 * stream; the tests/serve parity harness proves the concatenated
 * session stream byte-identical to `rapidc run` for every workload ×
 * engine configuration.
 *
 * Admission control and backpressure.  Session count is capped
 * (ServerOptions::maxSessions; OPEN beyond it gets a clean ERROR), and
 * each session carries optional byte/report quotas.  The FED ack is
 * only sent after a chunk fully executed, so a well-behaved client
 * (serve::Client) can never outrun the engine.
 *
 * Observability.  All activity lands in obs::MetricsRegistry under
 * `serve.*` (sessions, bytes, reports, quota trips, protocol errors,
 * reload epochs) and is scrapable from the same port via /metrics —
 * including *during* an active FEED, which the export tests race.
 */
#ifndef RAPID_SERVE_SERVER_H
#define RAPID_SERVE_SERVER_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "ap/image.h"
#include "obs/http.h"
#include "serve/protocol.h"

namespace rapid::serve {

struct ServerOptions {
    /** Listen port (0 = ephemeral; read back via port()). */
    uint16_t port = 0;

    /** Compile-cache directory for inline-source OPENs ("" compiles
     *  without caching). */
    std::string cacheDir;

    /** Concurrent-session cap; OPEN beyond it is rejected cleanly. */
    unsigned maxSessions = 64;

    /** Per-session input-byte quota (0 = unlimited). */
    uint64_t sessionByteQuota = 0;

    /** Per-session delivered-report quota (0 = unlimited). */
    uint64_t sessionReportQuota = 0;

    /** Permit OPEN by server-side .apimg path. */
    bool allowPathOpen = true;

    /** Permit OPEN with inline RAPID source. */
    bool allowInlineSource = true;

    /** Permit the RELOAD admin op. */
    bool allowReload = true;
};

class Server {
  public:
    explicit Server(ServerOptions options = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind and start serving.  @return false with @p error set on
     * failure (port in use, ...).
     */
    bool start(std::string *error = nullptr);

    /** Stop accepting, fail in-flight sessions, join all threads. */
    void stop();

    bool running() const { return _listener.running(); }
    uint16_t port() const { return _listener.port(); }
    std::string url() const { return _listener.url(); }

    /**
     * Load a .apimg file into the registry under @p name (also how
     * startup --image flags arrive).  Replaces any existing binding —
     * load twice is a hot reload.  @return the design's epoch.
     * @throws rapid::Error when the file is unreadable or corrupt.
     */
    uint64_t loadImageFile(const std::string &name,
                           const std::string &path);

    /** Load an in-memory image (tests). @return the design's epoch. */
    uint64_t loadImage(const std::string &name, ap::DesignImage image);

    /** Current epoch of @p name, 0 when not loaded. */
    uint64_t epochOf(const std::string &name) const;

    /** Sessions currently between OPEN and connection teardown. */
    size_t activeSessions() const { return _activeSessions; }

    const ServerOptions &options() const { return _options; }

  private:
    struct LoadedDesign;
    struct SessionExec;

    void handleSession(int fd, std::string_view preface);

    /** Resolve an OPEN to a design (loading/compiling as needed). */
    std::shared_ptr<LoadedDesign> resolveOpen(const OpenRequest &open);

    /** Bind @p image to @p name with a fresh epoch. */
    std::shared_ptr<LoadedDesign>
    bindDesign(const std::string &name, ap::DesignImage image);

    std::shared_ptr<LoadedDesign>
    findDesign(const std::string &name) const;

    ServerOptions _options;
    obs::MetricsServer _listener;

    mutable std::mutex _registryMutex;
    std::map<std::string, std::shared_ptr<LoadedDesign>> _registry;
    uint64_t _nextEpoch = 1;

    std::atomic<uint64_t> _nextSession{1};
    std::atomic<size_t> _activeSessions{0};
};

} // namespace rapid::serve

#endif // RAPID_SERVE_SERVER_H
