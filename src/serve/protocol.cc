#include "serve/protocol.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "support/binio.h"
#include "support/error.h"
#include "support/strings.h"

namespace rapid::serve {

std::string
opName(uint8_t op)
{
    switch (static_cast<Op>(op)) {
      case Op::Open:
        return "OPEN";
      case Op::Feed:
        return "FEED";
      case Op::Close:
        return "CLOSE";
      case Op::Reload:
        return "RELOAD";
      case Op::Opened:
        return "OPENED";
      case Op::Reports:
        return "REPORTS";
      case Op::Fed:
        return "FED";
      case Op::Closed:
        return "CLOSED";
      case Op::Error:
        return "ERROR";
      case Op::Reloaded:
        return "RELOADED";
    }
    return strprintf("op_%02x", op);
}

bool
readExact(int fd, void *out, size_t n)
{
    char *cursor = static_cast<char *>(out);
    size_t got = 0;
    while (got < n) {
        ssize_t r = ::recv(fd, cursor + got, n - got, 0);
        if (r == 0)
            return false;
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        got += static_cast<size_t>(r);
    }
    return true;
}

bool
writeAll(int fd, std::string_view data)
{
    size_t sent = 0;
    while (sent < data.size()) {
        ssize_t n =
            ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                   MSG_NOSIGNAL
#else
                   0
#endif
            );
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

ReadResult
readFrame(int fd, Frame *frame, std::string *error)
{
    auto fail = [&](ReadResult result, const char *what) {
        if (error != nullptr)
            *error = what;
        return result;
    };

    // The length prefix, byte by byte: a clean EOF before the first
    // byte is a normal end of stream; EOF inside the prefix is a
    // truncated frame.
    unsigned char prefix[4];
    ssize_t first;
    do {
        first = ::recv(fd, prefix, 1, 0);
    } while (first < 0 && errno == EINTR);
    if (first == 0)
        return ReadResult::Eof;
    if (first < 0)
        return fail(ReadResult::IoError, "recv failed");
    if (!readExact(fd, prefix + 1, 3))
        return fail(ReadResult::Malformed,
                    "truncated frame length prefix");
    const uint32_t length = static_cast<uint32_t>(prefix[0]) |
                            static_cast<uint32_t>(prefix[1]) << 8 |
                            static_cast<uint32_t>(prefix[2]) << 16 |
                            static_cast<uint32_t>(prefix[3]) << 24;
    if (length == 0)
        return fail(ReadResult::Malformed, "zero-length frame");
    if (length > kMaxFrame) {
        return fail(ReadResult::Malformed,
                    "declared frame length exceeds limit");
    }
    if (!readExact(fd, &frame->op, 1))
        return fail(ReadResult::Malformed, "truncated frame opcode");
    frame->payload.resize(length - 1);
    if (length > 1 && !readExact(fd, frame->payload.data(), length - 1))
        return fail(ReadResult::Malformed, "truncated frame payload");
    return ReadResult::Ok;
}

bool
writeFrame(int fd, Op op, std::string_view payload)
{
    if (payload.size() + 1 > kMaxFrame)
        throw Error("frame payload exceeds kMaxFrame");
    const uint32_t length = static_cast<uint32_t>(payload.size()) + 1;
    std::string wire;
    wire.reserve(4 + length);
    wire.push_back(static_cast<char>(length & 0xff));
    wire.push_back(static_cast<char>((length >> 8) & 0xff));
    wire.push_back(static_cast<char>((length >> 16) & 0xff));
    wire.push_back(static_cast<char>((length >> 24) & 0xff));
    wire.push_back(static_cast<char>(op));
    wire.append(payload);
    return writeAll(fd, wire);
}

std::string
encodeOpen(const OpenRequest &request)
{
    BinaryWriter writer;
    writer.u8(static_cast<uint8_t>(request.kind));
    writer.str(request.target);
    writer.str(request.argsText);
    writer.str(request.engine);
    writer.u32(request.shards);
    writer.u32(request.threads);
    return writer.take();
}

OpenRequest
decodeOpen(std::string_view payload)
{
    BinaryReader reader(payload, "serve.open");
    OpenRequest request;
    const uint8_t kind = reader.u8();
    if (kind > static_cast<uint8_t>(OpenKind::InlineSource))
        throw Error("serve.open: unknown open kind");
    request.kind = static_cast<OpenKind>(kind);
    request.target = reader.str();
    request.argsText = reader.str();
    request.engine = reader.str();
    request.shards = reader.u32();
    request.threads = reader.u32();
    reader.expectEnd();
    return request;
}

std::string
encodeOpened(const OpenedInfo &info)
{
    BinaryWriter writer;
    writer.u64(info.sessionId);
    writer.u64(info.epoch);
    return writer.take();
}

OpenedInfo
decodeOpened(std::string_view payload)
{
    BinaryReader reader(payload, "serve.opened");
    OpenedInfo info;
    info.sessionId = reader.u64();
    info.epoch = reader.u64();
    reader.expectEnd();
    return info;
}

std::string
encodeReports(const std::vector<ReportRecord> &reports)
{
    BinaryWriter writer;
    writer.u64(reports.size());
    for (const ReportRecord &report : reports) {
        writer.u64(report.offset);
        writer.str(report.code);
        writer.str(report.element);
    }
    return writer.take();
}

std::vector<ReportRecord>
decodeReports(std::string_view payload)
{
    BinaryReader reader(payload, "serve.reports");
    // Each record is at least offset + two empty length prefixes.
    const uint64_t count = reader.count(8 + 8 + 8);
    std::vector<ReportRecord> reports;
    reports.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        ReportRecord report;
        report.offset = reader.u64();
        report.code = reader.str();
        report.element = reader.str();
        reports.push_back(std::move(report));
    }
    reader.expectEnd();
    return reports;
}

std::string
encodeFed(const FedInfo &info)
{
    BinaryWriter writer;
    writer.u64(info.consumedBytes);
    return writer.take();
}

FedInfo
decodeFed(std::string_view payload)
{
    BinaryReader reader(payload, "serve.fed");
    FedInfo info;
    info.consumedBytes = reader.u64();
    reader.expectEnd();
    return info;
}

std::string
encodeClosed(const ClosedInfo &info)
{
    BinaryWriter writer;
    writer.u64(info.totalBytes);
    writer.u64(info.totalReports);
    return writer.take();
}

ClosedInfo
decodeClosed(std::string_view payload)
{
    BinaryReader reader(payload, "serve.closed");
    ClosedInfo info;
    info.totalBytes = reader.u64();
    info.totalReports = reader.u64();
    reader.expectEnd();
    return info;
}

std::string
encodeReload(const ReloadRequest &request)
{
    BinaryWriter writer;
    writer.str(request.name);
    writer.str(request.path);
    return writer.take();
}

ReloadRequest
decodeReload(std::string_view payload)
{
    BinaryReader reader(payload, "serve.reload");
    ReloadRequest request;
    request.name = reader.str();
    request.path = reader.str();
    reader.expectEnd();
    return request;
}

std::string
encodeReloaded(const ReloadedInfo &info)
{
    BinaryWriter writer;
    writer.u64(info.epoch);
    return writer.take();
}

ReloadedInfo
decodeReloaded(std::string_view payload)
{
    BinaryReader reader(payload, "serve.reloaded");
    ReloadedInfo info;
    info.epoch = reader.u64();
    reader.expectEnd();
    return info;
}

std::string
encodeError(std::string_view message)
{
    BinaryWriter writer;
    writer.str(message);
    return writer.take();
}

std::string
decodeError(std::string_view payload)
{
    BinaryReader reader(payload, "serve.error");
    std::string message = reader.str();
    reader.expectEnd();
    return message;
}

std::string
reportsText(const std::vector<ReportRecord> &reports)
{
    std::string out;
    for (const ReportRecord &report : reports) {
        out += strprintf("%llu\t%s\t%s\n",
                         static_cast<unsigned long long>(report.offset),
                         report.code.c_str(), report.element.c_str());
    }
    return out;
}

} // namespace rapid::serve
