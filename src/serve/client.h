/**
 * @file
 * In-tree client for the rapidd match service.
 *
 * A thin, blocking wrapper over the wire protocol (serve/protocol.h)
 * that the parity harness, the soak tests, and `rapidd client` all
 * share — so every consumer exercises the same framing code the
 * conformance suite certifies.
 *
 * The client enforces the backpressure contract: feed() does not
 * return until the server's FED ack arrives, collecting any REPORTS
 * frames delivered before it.  A caller that streams chunk-by-chunk
 * therefore can never run ahead of the engine.
 *
 * Every method throws rapid::Error on a transport failure or when the
 * server answers with an ERROR frame (the server closes the
 * connection after ERROR, so the session is over either way).
 */
#ifndef RAPID_SERVE_CLIENT_H
#define RAPID_SERVE_CLIENT_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.h"

namespace rapid::serve {

class Client {
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Connect to 127.0.0.1:@p port and send the protocol magic.
     * @throws rapid::Error when the daemon is unreachable.
     */
    void connect(uint16_t port);

    /** Drop the connection (idempotent; also run by the destructor). */
    void disconnect();

    bool connected() const { return _fd >= 0; }

    /** OPEN a session. @return the session id and pinned epoch. */
    OpenedInfo open(const OpenRequest &request);

    /**
     * FEED one chunk (split internally when it exceeds the frame
     * cap) and wait for the ack.  @return the reports delivered while
     * the chunk executed, in canonical order.
     */
    std::vector<ReportRecord> feed(std::string_view chunk);

    /**
     * CLOSE the stream.  @return the final reports (everything for
     * the whole-stream engines); @p info receives the session totals.
     */
    std::vector<ReportRecord> finish(ClosedInfo *info = nullptr);

    /** Admin RELOAD: rebind @p name to the image at @p path. */
    ReloadedInfo reload(const std::string &name,
                        const std::string &path);

    /**
     * Convenience: open + feed @p input in @p chunk_size pieces +
     * finish, returning the full canonical report stream.
     */
    std::vector<ReportRecord> run(const OpenRequest &request,
                                  std::string_view input,
                                  size_t chunk_size = 64 * 1024);

    /**
     * Escape hatch for the robustness suite: write raw bytes on the
     * wire, bypassing all framing.  @return false if the peer is gone.
     */
    bool sendRaw(std::string_view bytes);

    /** The underlying socket (robustness tests). */
    int fd() const { return _fd; }

  private:
    /**
     * Read frames until @p terminal (collecting REPORTS into
     * @p reports when non-null); throws on ERROR or transport loss.
     */
    Frame expect(Op terminal, std::vector<ReportRecord> *reports);

    int _fd = -1;
};

} // namespace rapid::serve

#endif // RAPID_SERVE_CLIENT_H
