#include "serve/server.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "automata/batch_simulator.h"
#include "automata/simulator.h"
#include "host/argfile.h"
#include "host/compile_cache.h"
#include "host/device.h"
#include "lang/codegen.h"
#include "lang/parser.h"
#include "obs/metrics.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/strings.h"

namespace rapid::serve {

namespace {

/** Records per REPORTS frame: comfortably under kMaxFrame even with
 *  long report codes, small enough to start flowing early. */
constexpr size_t kReportsPerFrame = 4096;

obs::MetricsRegistry &
metrics()
{
    return obs::MetricsRegistry::instance();
}

/** Canonically order raw engine events and attach identities — the
 *  incremental twin of host::Device::enrich(), chunk by chunk.  The
 *  concatenation over chunks equals the whole-stream canonical order
 *  because chunks cover whole cycles and offsets only grow. */
std::vector<ReportRecord>
enrichSorted(std::vector<automata::ReportEvent> events,
             const automata::Automaton &design)
{
    std::stable_sort(events.begin(), events.end());
    std::vector<ReportRecord> out;
    out.reserve(events.size());
    for (const automata::ReportEvent &event : events) {
        ReportRecord record;
        record.offset = event.offset;
        record.element = design[event.element].id;
        record.code = design[event.element].reportCode;
        out.push_back(std::move(record));
    }
    return out;
}

} // namespace

/**
 * One epoch of one named design.  Immutable once bound: a hot reload
 * creates a *new* LoadedDesign and rebinds the name, so sessions
 * pinning this one keep executing against unchanging tables.  The
 * execution engines are built lazily and shared across sessions.
 */
struct Server::LoadedDesign {
    std::string name;
    uint64_t epoch = 0;
    ap::DesignImage image;

    /** A whole-stream engine and the lock serializing runs on it. */
    struct DeviceSlot {
        std::mutex mutex;
        host::Device device;
        DeviceSlot(const ap::DesignImage &image, host::Engine engine,
                   unsigned shards, unsigned threads)
            : device(image, engine, shards, threads)
        {
        }
    };

    /** The shared multi-stream engine: one compiled BatchSimulator
     *  serves every batch session as an independent cursor lane. */
    std::shared_ptr<automata::BatchSimulator> batchEngine()
    {
        std::lock_guard<std::mutex> guard(_mutex);
        if (!_batch) {
            _batch = std::make_shared<automata::BatchSimulator>(
                image.design);
        }
        return _batch;
    }

    /** Cached whole-stream Device per (engine, shards, threads). */
    std::shared_ptr<DeviceSlot>
    deviceSlot(host::Engine engine, unsigned shards, unsigned threads)
    {
        std::lock_guard<std::mutex> guard(_mutex);
        auto key = std::make_tuple(static_cast<int>(engine), shards,
                                   threads);
        auto it = _devices.find(key);
        if (it != _devices.end())
            return it->second;
        auto slot = std::make_shared<DeviceSlot>(image, engine, shards,
                                                 threads);
        _devices.emplace(key, slot);
        return slot;
    }

  private:
    std::mutex _mutex;
    std::shared_ptr<automata::BatchSimulator> _batch;
    std::map<std::tuple<int, unsigned, unsigned>,
             std::shared_ptr<DeviceSlot>>
        _devices;
};

/**
 * Per-session execution state.  The engine split mirrors the engines'
 * native granularity: batch and scalar execute FEED chunks as they
 * arrive (incremental report delivery); sharded and parallel
 * reconcile whole streams, so the session buffers and runs at CLOSE.
 */
struct Server::SessionExec {
    std::shared_ptr<LoadedDesign> design;
    host::Engine engine = host::Engine::Batch;

    // Engine::Batch — a lane on the shared multi-stream engine.
    std::shared_ptr<automata::BatchSimulator> batch;
    automata::BatchSimulator::Cursor cursor;

    // Engine::Scalar — a private lock-step reference simulator.
    std::unique_ptr<automata::Simulator> scalar;
    size_t scalarDelivered = 0;

    // Engine::Sharded / Engine::Parallel — buffer, run at CLOSE.
    std::shared_ptr<LoadedDesign::DeviceSlot> slot;
    std::string buffered;

    uint64_t bytes = 0;
    uint64_t reportsOut = 0;

    std::vector<ReportRecord> feed(std::string_view chunk)
    {
        switch (engine) {
          case host::Engine::Batch:
            batch->advance(cursor, chunk);
            return enrichSorted(cursor.takeReports(),
                                design->image.design);
          case host::Engine::Scalar: {
            for (char c : chunk)
                scalar->step(static_cast<unsigned char>(c));
            const auto &all = scalar->reports();
            std::vector<automata::ReportEvent> fresh(
                all.begin() +
                    static_cast<ptrdiff_t>(scalarDelivered),
                all.end());
            scalarDelivered = all.size();
            return enrichSorted(std::move(fresh),
                                design->image.design);
          }
          default:
            buffered.append(chunk);
            return {};
        }
    }

    std::vector<ReportRecord> finish()
    {
        if (engine != host::Engine::Sharded &&
            engine != host::Engine::Parallel)
            return {};
        std::lock_guard<std::mutex> guard(slot->mutex);
        std::vector<host::HostReport> host_reports =
            slot->device.run(buffered);
        std::vector<ReportRecord> out;
        out.reserve(host_reports.size());
        for (host::HostReport &report : host_reports) {
            ReportRecord record;
            record.offset = report.offset;
            record.code = std::move(report.code);
            record.element = std::move(report.element);
            out.push_back(std::move(record));
        }
        return out;
    }
};

Server::Server(ServerOptions options) : _options(std::move(options)) {}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string *error)
{
    _listener.setStreamHandler(
        std::string(kMagic, kMagicSize),
        [this](int fd, std::string_view preface) {
            handleSession(fd, preface);
        });
    if (!_listener.start(_options.port, error))
        return false;
    logInfo("serve", strprintf("rapidd listening on %s (match + HTTP)",
                               _listener.url().c_str()));
    return true;
}

void
Server::stop()
{
    _listener.stop();
}

std::shared_ptr<Server::LoadedDesign>
Server::bindDesign(const std::string &name, ap::DesignImage image)
{
    auto design = std::make_shared<LoadedDesign>();
    design->name = name;
    design->image = std::move(image);
    {
        std::lock_guard<std::mutex> guard(_registryMutex);
        design->epoch = _nextEpoch++;
        _registry[name] = design;
    }
    metrics()
        .gauge("serve.reload.epoch")
        .set(static_cast<double>(design->epoch));
    logInfo("serve",
            strprintf("design '%s' bound at epoch %llu (%zu elements)",
                      name.c_str(),
                      static_cast<unsigned long long>(design->epoch),
                      design->image.design.size()));
    return design;
}

std::shared_ptr<Server::LoadedDesign>
Server::findDesign(const std::string &name) const
{
    std::lock_guard<std::mutex> guard(_registryMutex);
    auto it = _registry.find(name);
    return it == _registry.end() ? nullptr : it->second;
}

uint64_t
Server::loadImageFile(const std::string &name, const std::string &path)
{
    // Load fully before touching the registry: a bad path or corrupt
    // image throws here and the previous binding keeps serving.
    ap::DesignImage image = ap::loadImageFile(path);
    return bindDesign(name, std::move(image))->epoch;
}

uint64_t
Server::loadImage(const std::string &name, ap::DesignImage image)
{
    return bindDesign(name, std::move(image))->epoch;
}

uint64_t
Server::epochOf(const std::string &name) const
{
    auto design = findDesign(name);
    return design ? design->epoch : 0;
}

std::shared_ptr<Server::LoadedDesign>
Server::resolveOpen(const OpenRequest &open)
{
    switch (open.kind) {
      case OpenKind::Name: {
        auto design = findDesign(open.target);
        if (!design) {
            throw Error(strprintf("unknown design '%s'",
                                  open.target.c_str()));
        }
        return design;
      }
      case OpenKind::ImagePath: {
        if (!_options.allowPathOpen)
            throw Error("OPEN by image path is disabled");
        // The path doubles as the registry name, so repeat opens hit
        // the hot design; RELOAD refreshes a changed file.
        if (auto design = findDesign(open.target))
            return design;
        ap::DesignImage image = ap::loadImageFile(open.target);
        return bindDesign(open.target, std::move(image));
      }
      case OpenKind::InlineSource: {
        if (!_options.allowInlineSource)
            throw Error("OPEN with inline source is disabled");
        const lang::CompileOptions compile_options;
        const std::string key = host::cacheKey(
            open.target, open.argsText, compile_options);
        const std::string name = "src:" + key;
        if (auto design = findDesign(name))
            return design;
        if (!_options.cacheDir.empty()) {
            host::CompileCache cache(_options.cacheDir);
            if (auto image = cache.load(key))
                return bindDesign(name, std::move(*image));
        }
        lang::Program program = lang::parseProgram(open.target);
        std::vector<lang::Value> args =
            host::parseArgFile(open.argsText);
        lang::CompiledProgram compiled =
            lang::compileProgram(program, args, compile_options);
        ap::DesignImage image = host::buildImage(compiled, key);
        if (!_options.cacheDir.empty())
            host::CompileCache(_options.cacheDir).store(key, image);
        return bindDesign(name, std::move(image));
      }
    }
    throw Error("unknown OPEN kind");
}

void
Server::handleSession(int fd, std::string_view /*preface*/)
{
    std::unique_ptr<SessionExec> exec;
    bool admitted = false;
    bool closed = false;

    auto sendError = [&](const std::string &message) {
        metrics().counter("serve.sessions.errors").add(1);
        writeFrame(fd, Op::Error, encodeError(message));
    };

    /** Stream @p records back, report-quota checked, frame-batched. */
    auto deliver = [&](std::vector<ReportRecord> records) {
        if (_options.sessionReportQuota != 0 &&
            exec->reportsOut + records.size() >
                _options.sessionReportQuota) {
            metrics().counter("serve.quota.reports").add(1);
            throw Error("session report quota exceeded");
        }
        for (size_t begin = 0; begin < records.size();
             begin += kReportsPerFrame) {
            const size_t end = std::min(records.size(),
                                        begin + kReportsPerFrame);
            std::vector<ReportRecord> slice(
                records.begin() + static_cast<ptrdiff_t>(begin),
                records.begin() + static_cast<ptrdiff_t>(end));
            if (!writeFrame(fd, Op::Reports, encodeReports(slice)))
                throw Error("client went away during report delivery");
        }
        exec->reportsOut += records.size();
        metrics().counter("serve.reports_out").add(records.size());
    };

    for (;;) {
        Frame frame;
        std::string why;
        const ReadResult result = readFrame(fd, &frame, &why);
        if (result == ReadResult::Eof || result == ReadResult::IoError)
            break;
        if (result == ReadResult::Malformed) {
            metrics().counter("serve.protocol_errors").add(1);
            sendError("malformed frame: " + why);
            break;
        }
        metrics().counter("serve.frames_in").add(1);

        bool done = false;
        try {
            switch (static_cast<Op>(frame.op)) {
              case Op::Open: {
                if (exec)
                    throw Error("session already open");
                const OpenRequest open = decodeOpen(frame.payload);
                // Admission control: claim a slot before any
                // expensive resolution, release on over-cap.
                if (++_activeSessions > _options.maxSessions) {
                    --_activeSessions;
                    metrics()
                        .counter("serve.sessions.rejected")
                        .add(1);
                    throw Error(strprintf(
                        "session limit reached (%u active)",
                        _options.maxSessions));
                }
                admitted = true;
                metrics()
                    .gauge("serve.sessions.active")
                    .set(static_cast<double>(_activeSessions));

                auto design = resolveOpen(open);
                auto session = std::make_unique<SessionExec>();
                session->design = design;
                session->engine =
                    open.engine.empty()
                        ? host::Engine::Batch
                        : host::parseEngine(open.engine);
                switch (session->engine) {
                  case host::Engine::Batch:
                    session->batch = design->batchEngine();
                    session->cursor = session->batch->startCursor();
                    break;
                  case host::Engine::Scalar:
                    session->scalar =
                        std::make_unique<automata::Simulator>(
                            design->image.design);
                    session->scalar->reset();
                    break;
                  case host::Engine::Sharded:
                  case host::Engine::Parallel:
                    session->slot = design->deviceSlot(
                        session->engine, open.shards, open.threads);
                    break;
                }
                exec = std::move(session);

                OpenedInfo info;
                info.sessionId = _nextSession++;
                info.epoch = design->epoch;
                metrics().counter("serve.sessions.opened").add(1);
                writeFrame(fd, Op::Opened, encodeOpened(info));
                break;
              }

              case Op::Feed: {
                if (!exec)
                    throw Error("FEED before OPEN");
                if (closed)
                    throw Error("FEED after CLOSE");
                const uint64_t total =
                    exec->bytes + frame.payload.size();
                if (_options.sessionByteQuota != 0 &&
                    total > _options.sessionByteQuota) {
                    metrics().counter("serve.quota.bytes").add(1);
                    throw Error("session byte quota exceeded");
                }
                deliver(exec->feed(frame.payload));
                exec->bytes = total;
                metrics()
                    .counter("serve.bytes_in")
                    .add(frame.payload.size());
                FedInfo info;
                info.consumedBytes = exec->bytes;
                writeFrame(fd, Op::Fed, encodeFed(info));
                break;
              }

              case Op::Close: {
                if (!exec)
                    throw Error("CLOSE before OPEN");
                if (closed)
                    throw Error("duplicate CLOSE");
                deliver(exec->finish());
                closed = true;
                ClosedInfo info;
                info.totalBytes = exec->bytes;
                info.totalReports = exec->reportsOut;
                metrics().counter("serve.sessions.closed").add(1);
                writeFrame(fd, Op::Closed, encodeClosed(info));
                break;
              }

              case Op::Reload: {
                if (!_options.allowReload)
                    throw Error("RELOAD is disabled");
                const ReloadRequest reload =
                    decodeReload(frame.payload);
                ReloadedInfo info;
                try {
                    info.epoch =
                        loadImageFile(reload.name, reload.path);
                } catch (const Error &) {
                    metrics().counter("serve.reload.errors").add(1);
                    throw;
                }
                metrics().counter("serve.reload.count").add(1);
                writeFrame(fd, Op::Reloaded, encodeReloaded(info));
                break;
              }

              default:
                metrics().counter("serve.protocol_errors").add(1);
                throw Error("unexpected opcode " +
                            opName(frame.op));
            }
        } catch (const Error &error) {
            sendError(error.what());
            done = true;
        }
        if (done)
            break;
    }

    if (admitted) {
        --_activeSessions;
        metrics()
            .gauge("serve.sessions.active")
            .set(static_cast<double>(_activeSessions));
    }
}

} // namespace rapid::serve
