#include "serve/client.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/error.h"
#include "support/strings.h"

namespace rapid::serve {

Client::~Client()
{
    disconnect();
}

void
Client::connect(uint16_t port)
{
    disconnect();
    _fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (_fd < 0)
        throw Error(strprintf("socket: %s", std::strerror(errno)));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(_fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const std::string message =
            strprintf("connect 127.0.0.1:%u: %s",
                      static_cast<unsigned>(port),
                      std::strerror(errno));
        disconnect();
        throw Error(message);
    }
    // The protocol is strictly request/response with small frames;
    // Nagle + delayed ACK turns every exchange into a ~40 ms stall.
    int one = 1;
    ::setsockopt(_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    if (!writeAll(_fd, std::string_view(kMagic, kMagicSize))) {
        disconnect();
        throw Error("connection lost while sending protocol magic");
    }
}

void
Client::disconnect()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
}

bool
Client::sendRaw(std::string_view bytes)
{
    if (_fd < 0)
        throw Error("client is not connected");
    return writeAll(_fd, bytes);
}

Frame
Client::expect(Op terminal, std::vector<ReportRecord> *reports)
{
    for (;;) {
        Frame frame;
        std::string why;
        switch (readFrame(_fd, &frame, &why)) {
          case ReadResult::Ok:
            break;
          case ReadResult::Eof:
            throw Error("server closed the connection");
          case ReadResult::Malformed:
            throw Error("malformed server frame: " + why);
          case ReadResult::IoError:
            throw Error("connection to server lost");
        }
        const Op op = static_cast<Op>(frame.op);
        if (op == Op::Error)
            throw Error("server: " + decodeError(frame.payload));
        if (op == Op::Reports && reports != nullptr) {
            std::vector<ReportRecord> batch =
                decodeReports(frame.payload);
            reports->insert(reports->end(),
                            std::make_move_iterator(batch.begin()),
                            std::make_move_iterator(batch.end()));
            continue;
        }
        if (op == terminal)
            return frame;
        throw Error("unexpected server frame " + opName(frame.op));
    }
}

OpenedInfo
Client::open(const OpenRequest &request)
{
    if (_fd < 0)
        throw Error("client is not connected");
    if (!writeFrame(_fd, Op::Open, encodeOpen(request)))
        throw Error("connection to server lost");
    return decodeOpened(expect(Op::Opened, nullptr).payload);
}

std::vector<ReportRecord>
Client::feed(std::string_view chunk)
{
    if (_fd < 0)
        throw Error("client is not connected");
    std::vector<ReportRecord> reports;
    // An empty chunk is still one FEED round trip (the soak test uses
    // them as keep-alives); larger chunks split under the frame cap.
    constexpr size_t kMaxChunk = kMaxFrame - 1;
    size_t begin = 0;
    do {
        const std::string_view piece =
            chunk.substr(begin, std::min(chunk.size() - begin,
                                         kMaxChunk));
        if (!writeFrame(_fd, Op::Feed, piece))
            throw Error("connection to server lost");
        expect(Op::Fed, &reports);
        begin += piece.size();
    } while (begin < chunk.size());
    return reports;
}

std::vector<ReportRecord>
Client::finish(ClosedInfo *info)
{
    if (_fd < 0)
        throw Error("client is not connected");
    if (!writeFrame(_fd, Op::Close, {}))
        throw Error("connection to server lost");
    std::vector<ReportRecord> reports;
    Frame frame = expect(Op::Closed, &reports);
    if (info != nullptr)
        *info = decodeClosed(frame.payload);
    return reports;
}

ReloadedInfo
Client::reload(const std::string &name, const std::string &path)
{
    if (_fd < 0)
        throw Error("client is not connected");
    ReloadRequest request;
    request.name = name;
    request.path = path;
    if (!writeFrame(_fd, Op::Reload, encodeReload(request)))
        throw Error("connection to server lost");
    return decodeReloaded(expect(Op::Reloaded, nullptr).payload);
}

std::vector<ReportRecord>
Client::run(const OpenRequest &request, std::string_view input,
            size_t chunk_size)
{
    if (chunk_size == 0)
        chunk_size = 64 * 1024;
    open(request);
    std::vector<ReportRecord> reports;
    for (size_t begin = 0; begin < input.size();
         begin += chunk_size) {
        std::vector<ReportRecord> batch =
            feed(input.substr(begin, chunk_size));
        reports.insert(reports.end(),
                       std::make_move_iterator(batch.begin()),
                       std::make_move_iterator(batch.end()));
    }
    std::vector<ReportRecord> tail = finish();
    reports.insert(reports.end(),
                   std::make_move_iterator(tail.begin()),
                   std::make_move_iterator(tail.end()));
    return reports;
}

} // namespace rapid::serve
