/**
 * @file
 * Wire protocol of the rapidd streaming match service.
 *
 * The deployment model is the paper's compile-once / stream-many
 * workflow turned into a service: prebuilt .apimg design images are
 * loaded into the daemon once, then clients stream data at rate and
 * receive (offset, report-code) events back.  The protocol is a
 * length-prefixed binary framing over one loopback TCP connection per
 * session, multiplexed with the HTTP observability routes on the same
 * acceptor (obs/http.h): a connection whose first four bytes are the
 * magic "RPDM" speaks this protocol, anything else is scraped as HTTP.
 *
 * Framing (all integers little-endian, encoded via support/binio):
 *
 *     magic  := "RPDM"                      (once, client -> server)
 *     frame  := u32 length | u8 opcode | payload[length - 1]
 *
 * `length` counts the opcode byte plus the payload and must be in
 * [1, kMaxFrame]; anything else is a protocol error that ends the
 * session (framing cannot be resynchronized after a bad prefix).
 *
 * Session lifecycle (client -> server requests, server -> client
 * responses; one session per connection):
 *
 *     OPEN   -> OPENED | ERROR       name an image / path / source
 *     FEED   -> REPORTS* FED | ERROR stream one chunk, reports flow
 *                                    back before the ack
 *     CLOSE  -> REPORTS* CLOSED      end of stream, final reports
 *     RELOAD -> RELOADED | ERROR     admin: swap an image atomically
 *
 * The FED ack carries the total bytes consumed so far and is the flow
 * control: a client that waits for it (serve::Client does) can never
 * run ahead of the engine — that is the backpressure contract.
 * Reports are delivered incrementally as soon as the engine knows
 * them; engines that reconcile whole streams (sharded, parallel)
 * deliver everything at CLOSE.  Either way the concatenation of all
 * REPORTS frames is the canonical (offset, element)-sorted stream —
 * byte-identical to `rapidc run`.
 *
 * ERROR is always followed by connection close; a session error never
 * affects other sessions or the daemon itself (the robustness suite
 * fuzzes exactly this boundary).
 */
#ifndef RAPID_SERVE_PROTOCOL_H
#define RAPID_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rapid::serve {

/** Connection preamble selecting the match protocol on the shared
 *  acceptor ("RaPiD Match"). */
inline constexpr char kMagic[] = "RPDM";
inline constexpr size_t kMagicSize = 4;

/** Hard cap on one frame (opcode + payload).  FEED chunks larger
 *  than this must be split by the client; a declared length beyond it
 *  is malformed by definition, so a corrupt prefix can never drive a
 *  giant allocation. */
inline constexpr uint32_t kMaxFrame = 4u << 20;

/** Frame opcodes.  Client requests have the high bit clear, server
 *  responses have it set. */
enum class Op : uint8_t {
    Open = 0x01,
    Feed = 0x02,
    Close = 0x03,
    Reload = 0x04,

    Opened = 0x81,
    Reports = 0x82,
    Fed = 0x83,
    Closed = 0x84,
    Error = 0x85,
    Reloaded = 0x86,
};

/** Human-readable opcode name (unknown values render as "op_XX"). */
std::string opName(uint8_t op);

/** One decoded frame. */
struct Frame {
    uint8_t op = 0;
    std::string payload;
};

/** Outcome of readFrame(): distinguishes a clean end of stream from
 *  a framing violation (the latter is unrecoverable). */
enum class ReadResult {
    Ok,
    /** Peer closed cleanly between frames. */
    Eof,
    /** Truncated prefix/body, zero or oversized declared length. */
    Malformed,
    /** recv() failed (connection reset, server shutdown). */
    IoError,
};

/**
 * Read one frame from @p fd (blocking).  On Malformed, @p error says
 * what was wrong with the bytes.
 */
ReadResult readFrame(int fd, Frame *frame, std::string *error);

/**
 * Write one frame to @p fd.  @return false when the peer is gone.
 * @p payload must fit kMaxFrame - 1.
 */
bool writeFrame(int fd, Op op, std::string_view payload);

/** Read exactly @p n bytes; false on EOF/error before @p n. */
bool readExact(int fd, void *out, size_t n);

/** Write all of @p data; false when the peer is gone. */
bool writeAll(int fd, std::string_view data);

/*
 * Payload codecs.  All decode functions throw rapid::Error on
 * malformed payloads (bounds-checked via support/binio); the server
 * turns that into a per-session ERROR.
 */

/** What an OPEN names. */
enum class OpenKind : uint8_t {
    /** A design preloaded into (or previously loaded by) the daemon. */
    Name = 0,
    /** A .apimg path the daemon loads on demand. */
    ImagePath = 1,
    /** Inline RAPID source compiled on the daemon (compile cache). */
    InlineSource = 2,
};

struct OpenRequest {
    OpenKind kind = OpenKind::Name;
    /** Image name, image path, or RAPID source per @p kind. */
    std::string target;
    /** Raw argument-annotation bytes (InlineSource only). */
    std::string argsText;
    /** Execution engine name ("scalar", "batch", ...); "" = batch. */
    std::string engine;
    uint32_t shards = 0;
    uint32_t threads = 0;
};

std::string encodeOpen(const OpenRequest &request);
OpenRequest decodeOpen(std::string_view payload);

struct OpenedInfo {
    uint64_t sessionId = 0;
    /** Design epoch the session is pinned to (hot reload bumps it). */
    uint64_t epoch = 0;
};

std::string encodeOpened(const OpenedInfo &info);
OpenedInfo decodeOpened(std::string_view payload);

/** One report event as delivered to clients. */
struct ReportRecord {
    uint64_t offset = 0;
    std::string code;
    std::string element;
};

std::string encodeReports(const std::vector<ReportRecord> &reports);
std::vector<ReportRecord> decodeReports(std::string_view payload);

struct FedInfo {
    /** Total stream bytes consumed by the session so far. */
    uint64_t consumedBytes = 0;
};

std::string encodeFed(const FedInfo &info);
FedInfo decodeFed(std::string_view payload);

struct ClosedInfo {
    uint64_t totalBytes = 0;
    uint64_t totalReports = 0;
};

std::string encodeClosed(const ClosedInfo &info);
ClosedInfo decodeClosed(std::string_view payload);

struct ReloadRequest {
    /** Registry name to (re)bind. */
    std::string name;
    /** .apimg path to load. */
    std::string path;
};

std::string encodeReload(const ReloadRequest &request);
ReloadRequest decodeReload(std::string_view payload);

struct ReloadedInfo {
    uint64_t epoch = 0;
};

std::string encodeReloaded(const ReloadedInfo &info);
ReloadedInfo decodeReloaded(std::string_view payload);

/** ERROR payload: a bare UTF-8 message. */
std::string encodeError(std::string_view message);
std::string decodeError(std::string_view payload);

/**
 * Render @p reports exactly as `rapidc run` prints its report stream
 * ("offset\tcode\telement\n" per event) — the byte-parity surface the
 * conformance harness diffs against the CLI.
 */
std::string reportsText(const std::vector<ReportRecord> &reports);

} // namespace rapid::serve

#endif // RAPID_SERVE_PROTOCOL_H
