/**
 * @file
 * The §2 motivating case study: hand-written ANML for Hamming distance.
 *
 * The paper motivates RAPID with the Micron cookbook's Hamming-distance
 * design: comparing a 5-character string needs 62 lines of ANML, and
 * growing the string to 12 characters forces ~65 % of those lines to
 * change.  This module reproduces the cookbook construction (a
 * positional-encoding band automaton) so the claim can be measured, and
 * provides the one-line RAPID counterpart for contrast.
 */
#ifndef RAPID_APPS_HAMMING_COOKBOOK_H
#define RAPID_APPS_HAMMING_COOKBOOK_H

#include <cstddef>
#include <string>

#include "automata/automaton.h"

namespace rapid::apps {

/** Build the cookbook band automaton for Hamming(pattern) <= d. */
automata::Automaton cookbookHamming(const std::string &pattern, int d);

/** The cookbook design serialized to ANML. */
std::string cookbookHammingAnml(const std::string &pattern, int d);

/**
 * Fraction of ANML lines that must change to move from the design for
 * @p from to the design for @p to (line-level diff against the larger
 * file): the §2 "65% of the code must be modified" measurement.
 */
double cookbookChangeFraction(const std::string &from,
                              const std::string &to, int d);

/** The equivalent RAPID program (Fig. 1), for LoC comparison. */
std::string rapidHammingSource();

} // namespace rapid::apps

#endif // RAPID_APPS_HAMMING_COOKBOOK_H
