/**
 * @file
 * Gappy DNA string search (Bo et al. [4]).
 *
 * Table 3 instance: 25-bp patterns with up to 3 arbitrary gap symbols
 * allowed between consecutive pattern characters.  The hand-crafted
 * design is the published "gap ladder": after each pattern character, a
 * ladder of star STEs feeds the next character at every allowed gap
 * length.
 */
#include "apps/benchmarks.h"

#include "support/rng.h"
#include "support/strings.h"

namespace rapid::apps {

using automata::Automaton;
using automata::CharSet;
using automata::ElementId;
using automata::StartKind;

namespace {

constexpr size_t kPatternLength = 25;
constexpr int kMaxGap = 3;
constexpr size_t kDefaultPatterns = 8;
constexpr const char *kDna = "ACGT";

std::vector<std::string>
randomPatterns(size_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::string> patterns;
    patterns.reserve(count);
    for (size_t i = 0; i < count; ++i)
        patterns.push_back(rng.string(kPatternLength, kDna));
    return patterns;
}

class GappyBenchmark : public Benchmark {
  public:
    std::string name() const override { return "Gappy"; }

    std::string
    instanceDescription() const override
    {
        return "25-bp, gaps <= 3";
    }

    std::string
    rapidSource() const override
    {
        return R"(// Gappy DNA search: pattern characters may be separated by up
// to `maxGap` arbitrary symbols.  Each gap length is explored in
// parallel via `some` over the allowed lengths.
macro gappy(String p, int[] gaps) {
    p[0] == input();
    int i = 1;
    while (i < p.length()) {
        some (int k : gaps) {
            int j = 0;
            while (j < k) {
                ALL_INPUT == input();
                j = j + 1;
            }
            p[i] == input();
        }
        i = i + 1;
    }
    report;
}
network (String[] patterns, int[] gaps) {
    some (String p : patterns) {
        whenever (ALL_INPUT == input()) {
            gappy(p, gaps);
        }
    }
}
)";
    }

    std::vector<lang::Value>
    gapsArg() const
    {
        std::vector<int64_t> gaps;
        for (int k = 0; k <= kMaxGap; ++k)
            gaps.push_back(k);
        return {lang::Value::intArray(gaps)};
    }

    std::vector<lang::Value>
    networkArgs() const override
    {
        return {lang::Value::strArray(
                    randomPatterns(kDefaultPatterns, 0x6A99)),
                gapsArg().front()};
    }

    std::vector<lang::Value>
    scaledArgs(size_t instances) const override
    {
        return {lang::Value::strArray(randomPatterns(instances, 0x6A99)),
                gapsArg().front()};
    }

    // Hand-crafted gap-ladder generator, as published.
    static Automaton
    buildLadder(const std::vector<std::string> &patterns)
    {
        Automaton design;
        for (size_t p = 0; p < patterns.size(); ++p) {
            const std::string &pattern = patterns[p];
            ElementId prev = design.addSte(
                CharSet::single(pattern[0]), StartKind::AllInput,
                strprintf("g%zu_c0", p));
            for (size_t i = 1; i < pattern.size(); ++i) {
                ElementId next = design.addSte(
                    CharSet::single(pattern[i]), StartKind::None,
                    strprintf("g%zu_c%zu", p, i));
                design.connect(prev, next);
                ElementId hop = prev;
                for (int k = 1; k <= kMaxGap; ++k) {
                    ElementId star = design.addSte(
                        CharSet::all(), StartKind::None,
                        strprintf("g%zu_c%zu_s%d", p, i, k));
                    design.connect(hop, star);
                    design.connect(star, next);
                    hop = star;
                }
                prev = next;
            }
            design.setReport(prev, strprintf("gappy_%zu", p));
        }
        return design;
    }

    Automaton
    handcrafted() const override
    {
        return buildLadder(randomPatterns(kDefaultPatterns, 0x6A99));
    }

    size_t handcraftedGeneratorLoc() const override { return 27; }

    Workload
    workload(uint64_t seed) const override
    {
        auto patterns = randomPatterns(kDefaultPatterns, 0x6A99);
        Rng rng(seed);
        Workload load;
        load.stream = rng.string(6000, kDna);
        // Plant gapped occurrences of pattern 0.
        const std::string &pattern = patterns[0];
        for (size_t base = 300; base + 4 * pattern.size() <
                                    load.stream.size();
             base += 1431) {
            size_t pos = base;
            Rng gap_rng(base);
            for (char c : pattern) {
                pos += gap_rng.below(kMaxGap + 1); // gap before char
                load.stream[pos++] = c;
            }
        }
        // Ground truth by dynamic programming over all patterns: ends[i]
        // = offsets at which a prefix of length i+1 can end.
        std::vector<char> seen(load.stream.size(), 0);
        for (const std::string &p : patterns) {
            std::vector<std::vector<char>> ends(
                p.size(),
                std::vector<char>(load.stream.size(), 0));
            for (size_t j = 0; j < load.stream.size(); ++j)
                ends[0][j] = load.stream[j] == p[0];
            for (size_t i = 1; i < p.size(); ++i) {
                for (size_t j = 1; j < load.stream.size(); ++j) {
                    if (load.stream[j] != p[i])
                        continue;
                    for (int k = 0; k <= kMaxGap; ++k) {
                        if (j < static_cast<size_t>(k) + 1)
                            break;
                        if (ends[i - 1][j - 1 - k]) {
                            ends[i][j] = 1;
                            break;
                        }
                    }
                }
            }
            for (size_t j = 0; j < load.stream.size(); ++j) {
                if (ends[p.size() - 1][j])
                    seen[j] = 1;
            }
        }
        for (size_t j = 0; j < seen.size(); ++j) {
            if (seen[j])
                load.truth.push_back(j);
        }
        return load;
    }
};

} // namespace

std::unique_ptr<Benchmark>
makeGappy()
{
    return std::make_unique<GappyBenchmark>();
}

} // namespace rapid::apps
