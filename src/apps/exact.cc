/**
 * @file
 * Exact-match DNA sequence search (Bo et al. [4]).
 *
 * Table 3 instance: 25-base-pair patterns, sliding-window search over a
 * DNA stream.  The hand-crafted design is the obvious STE chain with an
 * all-input start — the same design the RAPID whenever/foreach program
 * compiles to, which is why Table 4 shows near-identical sizes.
 */
#include "apps/benchmarks.h"

#include "support/rng.h"
#include "support/strings.h"

namespace rapid::apps {

using automata::Automaton;
using automata::CharSet;
using automata::StartKind;

namespace {

constexpr size_t kPatternLength = 25;
constexpr const char *kDna = "ACGT";

std::vector<std::string>
randomPatterns(size_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::string> patterns;
    patterns.reserve(count);
    for (size_t i = 0; i < count; ++i)
        patterns.push_back(rng.string(kPatternLength, kDna));
    return patterns;
}

class ExactBenchmark : public Benchmark {
  public:
    std::string name() const override { return "Exact"; }

    std::string
    instanceDescription() const override
    {
        return "25 base pairs";
    }

    std::string
    rapidSource() const override
    {
        return R"(// Exact-match DNA search: report every occurrence of each
// pattern anywhere in the input stream.
network (String[] patterns) {
    some (String p : patterns) {
        whenever (ALL_INPUT == input()) {
            foreach (char c : p)
                c == input();
            report;
        }
    }
}
)";
    }

    std::vector<lang::Value>
    networkArgs() const override
    {
        return {lang::Value::strArray(randomPatterns(1, 0xE5AC7))};
    }

    std::vector<lang::Value>
    scaledArgs(size_t instances) const override
    {
        return {lang::Value::strArray(randomPatterns(instances, 0xE5AC7))};
    }

    // Hand-crafted generator (chain construction), as published.
    // --- generator begin (11 lines counted for Table 4) ---
    static Automaton
    buildChain(const std::vector<std::string> &patterns)
    {
        Automaton design;
        for (size_t p = 0; p < patterns.size(); ++p) {
            automata::ElementId prev = automata::kNoElement;
            for (size_t i = 0; i < patterns[p].size(); ++i) {
                automata::ElementId ste = design.addSte(
                    CharSet::single(patterns[p][i]),
                    i == 0 ? StartKind::AllInput : StartKind::None,
                    strprintf("p%zu_%zu", p, i));
                if (prev != automata::kNoElement)
                    design.connect(prev, ste);
                prev = ste;
            }
            design.setReport(prev, strprintf("exact_%zu", p));
        }
        return design;
    }
    // --- generator end ---

    Automaton
    handcrafted() const override
    {
        return buildChain(randomPatterns(1, 0xE5AC7));
    }

    size_t handcraftedGeneratorLoc() const override { return 18; }

    Workload
    workload(uint64_t seed) const override
    {
        std::string pattern = randomPatterns(1, 0xE5AC7).front();
        Rng rng(seed);
        Workload load;
        load.stream = rng.string(20000, kDna);
        // Plant occurrences at deterministic positions.
        for (size_t pos = 500; pos + pattern.size() < load.stream.size();
             pos += 1777) {
            load.stream.replace(pos, pattern.size(), pattern);
        }
        // Ground truth: every occurrence (planted or coincidental).
        for (size_t pos = 0;
             pos + pattern.size() <= load.stream.size(); ++pos) {
            if (load.stream.compare(pos, pattern.size(), pattern) == 0)
                load.truth.push_back(pos + pattern.size() - 1);
        }
        return load;
    }
};

} // namespace

std::unique_ptr<Benchmark>
makeExact()
{
    return std::make_unique<ExactBenchmark>();
}

} // namespace rapid::apps
