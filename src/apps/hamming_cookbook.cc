#include "apps/hamming_cookbook.h"

#include <algorithm>
#include <set>

#include "anml/anml.h"
#include "support/strings.h"

namespace rapid::apps {

using automata::Automaton;
using automata::CharSet;
using automata::ElementId;
using automata::kNoElement;
using automata::StartKind;

Automaton
cookbookHamming(const std::string &pattern, int d)
{
    // The cookbook band construction: positions i (consumed symbols)
    // by mismatch counts r (0..d).  match STE consumes pattern[i] and
    // stays in band r; mismatch STE consumes anything else and falls to
    // band r+1.
    Automaton design;
    const int length = static_cast<int>(pattern.size());
    std::vector<std::vector<ElementId>> match(length);
    std::vector<std::vector<ElementId>> miss(length);
    for (int i = 0; i < length; ++i) {
        int bands = std::min(i, d);
        match[i].assign(bands + 1, kNoElement);
        miss[i].assign(bands + 1, kNoElement);
        for (int r = 0; r <= bands; ++r) {
            match[i][r] = design.addSte(
                CharSet::single(pattern[i]),
                i == 0 ? StartKind::StartOfData : StartKind::None,
                strprintf("m_%d_%d", i, r));
            if (r < d) {
                miss[i][r] = design.addSte(
                    ~CharSet::single(pattern[i]),
                    i == 0 ? StartKind::StartOfData : StartKind::None,
                    strprintf("x_%d_%d", i, r));
            }
            if (i == length - 1) {
                design.setReport(match[i][r], "hamming");
                if (miss[i][r] != kNoElement)
                    design.setReport(miss[i][r], "hamming");
            }
        }
    }
    for (int i = 0; i + 1 < length; ++i) {
        int bands = std::min(i, d);
        for (int r = 0; r <= bands; ++r) {
            design.connect(match[i][r], match[i + 1][r]);
            if (miss[i + 1][r] != kNoElement)
                design.connect(match[i][r], miss[i + 1][r]);
            if (miss[i][r] != kNoElement) {
                design.connect(miss[i][r], match[i + 1][r + 1]);
                if (miss[i + 1][r + 1] != kNoElement)
                    design.connect(miss[i][r], miss[i + 1][r + 1]);
            }
        }
    }
    return design;
}

std::string
cookbookHammingAnml(const std::string &pattern, int d)
{
    return anml::emitAnml(cookbookHamming(pattern, d),
                          "hamming_" + std::to_string(pattern.size()));
}

double
cookbookChangeFraction(const std::string &from, const std::string &to,
                       int d)
{
    std::vector<std::string> a = split(cookbookHammingAnml(from, d), '\n');
    std::vector<std::string> b = split(cookbookHammingAnml(to, d), '\n');
    // Lines of the larger design that do not appear verbatim in the
    // smaller one must be written or modified.
    std::multiset<std::string> original(a.begin(), a.end());
    size_t unchanged = 0;
    for (const std::string &line : b) {
        auto it = original.find(line);
        if (it != original.end()) {
            ++unchanged;
            original.erase(it);
        }
    }
    size_t total = b.size();
    return total == 0
               ? 0.0
               : static_cast<double>(total - unchanged) /
                     static_cast<double>(total);
}

std::string
rapidHammingSource()
{
    return R"(macro hamming_distance(String s, int d) {
    Counter cnt;
    foreach (char c : s)
        if (c != input()) cnt.count();
    cnt <= d;
    report;
}
network (String[] comparisons) {
    some (String s : comparisons)
        hamming_distance(s, 5);
}
)";
}

} // namespace rapid::apps
