#include "apps/benchmarks.h"

namespace rapid::apps {

std::vector<std::unique_ptr<Benchmark>>
allBenchmarks()
{
    std::vector<std::unique_ptr<Benchmark>> out;
    out.push_back(makeArm());
    out.push_back(makeBrill());
    out.push_back(makeExact());
    out.push_back(makeGappy());
    out.push_back(makeMotomata());
    return out;
}

} // namespace rapid::apps
