/**
 * @file
 * MOTOMATA: planted-motif search (Roy and Aluru [18]).
 *
 * Table 3 instance: (l, d) = (17, 6) — report candidates within Hamming
 * distance 6 of a 17-character motif.  Candidates arrive as framed
 * records.  The RAPID program is the Fig. 1 Hamming macro (saturating
 * counter + inverter); the hand-crafted baseline is the published
 * *positional-encoding* lattice, which trades roughly twice the STEs
 * for counter-free operation — exactly the contrast Table 4 reports
 * (R 53 vs H 150 STEs) and the reason the R row pays a clock divisor
 * of 2 in Table 5.
 */
#include "apps/benchmarks.h"

#include "support/rng.h"
#include "support/strings.h"

namespace rapid::apps {

using automata::Automaton;
using automata::CharSet;
using automata::ElementId;
using automata::kNoElement;
using automata::StartKind;

namespace {

constexpr size_t kMotifLength = 17;
constexpr int kDistance = 6;
constexpr const char *kDna = "ACGT";

std::vector<std::string>
randomMotifs(size_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::string> motifs;
    motifs.reserve(count);
    for (size_t i = 0; i < count; ++i)
        motifs.push_back(rng.string(kMotifLength, kDna));
    return motifs;
}

class MotomataBenchmark : public Benchmark {
  public:
    std::string name() const override { return "MOTOMATA"; }

    std::string
    instanceDescription() const override
    {
        return "(17,6) motifs";
    }

    std::string
    rapidSource() const override
    {
        return R"(// Planted-motif search: report candidate records within
// Hamming distance d of any motif (the Fig. 1 program).
macro hamming_distance(String s, int d) {
    Counter cnt;
    foreach (char c : s)
        if (c != input()) cnt.count();
    cnt <= d;
    report;
}
network (String[] motifs, int d) {
    some (String s : motifs)
        hamming_distance(s, d);
}
)";
    }

    std::vector<lang::Value>
    networkArgs() const override
    {
        return {lang::Value::strArray(randomMotifs(1, 0x307031)),
                lang::Value::integer(kDistance)};
    }

    std::vector<lang::Value>
    scaledArgs(size_t instances) const override
    {
        return {lang::Value::strArray(randomMotifs(instances, 0x307031)),
                lang::Value::integer(kDistance)};
    }

    /**
     * The published positional-encoding design: STE m(i,r) consumes
     * motif character i having seen r mismatches; x(i,r) consumes a
     * mismatching character.  The mismatch count is encoded in the
     * lattice position, so no counter (and no clock division) is
     * needed, at the cost of ~2x the states.
     */
    static Automaton
    buildLattice(const std::vector<std::string> &motifs, int d)
    {
        Automaton design;
        for (size_t m = 0; m < motifs.size(); ++m) {
            const std::string &motif = motifs[m];
            const int length = static_cast<int>(motif.size());
            ElementId guard = design.addSte(
                CharSet::single('\xFF'), StartKind::AllInput,
                strprintf("m%zu_start", m));
            // match[i][r] / miss[i][r], r <= min(i, d).
            std::vector<std::vector<ElementId>> match(length);
            std::vector<std::vector<ElementId>> miss(length);
            for (int i = 0; i < length; ++i) {
                int max_r = std::min(i, d);
                match[i].assign(max_r + 1, kNoElement);
                miss[i].assign(max_r + 1, kNoElement);
                for (int r = 0; r <= max_r; ++r) {
                    match[i][r] = design.addSte(
                        CharSet::single(motif[i]), StartKind::None,
                        strprintf("m%zu_m_%d_%d", m, i, r));
                    if (r < d) {
                        miss[i][r] = design.addSte(
                            ~CharSet::single(motif[i]) &
                                ~CharSet::single('\xFF'),
                            StartKind::None,
                            strprintf("m%zu_x_%d_%d", m, i, r));
                    }
                    bool last = i == length - 1;
                    if (last) {
                        design.setReport(match[i][r],
                                         strprintf("motomata_%zu", m));
                        if (miss[i][r] != kNoElement) {
                            design.setReport(
                                miss[i][r],
                                strprintf("motomata_%zu", m));
                        }
                    }
                }
            }
            design.connect(guard, match[0][0]);
            if (miss[0][0] != kNoElement)
                design.connect(guard, miss[0][0]);
            for (int i = 0; i + 1 < length; ++i) {
                int max_r = std::min(i, d);
                for (int r = 0; r <= max_r; ++r) {
                    if (match[i][r] != kNoElement) {
                        design.connect(match[i][r], match[i + 1][r]);
                        if (miss[i + 1][r] != kNoElement) {
                            design.connect(match[i][r],
                                           miss[i + 1][r]);
                        }
                    }
                    if (miss[i][r] != kNoElement) {
                        design.connect(miss[i][r], match[i + 1][r + 1]);
                        if (r + 1 <= std::min(i + 1, d) &&
                            miss[i + 1][r + 1] != kNoElement) {
                            design.connect(miss[i][r],
                                           miss[i + 1][r + 1]);
                        }
                    }
                }
            }
        }
        return design;
    }

    Automaton
    handcrafted() const override
    {
        return buildLattice(randomMotifs(1, 0x307031), kDistance);
    }

    size_t handcraftedGeneratorLoc() const override { return 58; }

    Workload
    workload(uint64_t seed) const override
    {
        std::string motif = randomMotifs(1, 0x307031).front();
        Rng rng(seed);
        Workload load;
        // Candidate records of motif length, framed by START_OF_INPUT.
        size_t candidates = 400;
        for (size_t i = 0; i < candidates; ++i) {
            std::string candidate;
            if (rng.chance(0.3)) {
                // A planted near-motif with 0..8 substitutions.
                candidate = motif;
                int subs = static_cast<int>(rng.below(9));
                for (int s = 0; s < subs; ++s) {
                    size_t pos = rng.below(candidate.size());
                    candidate[pos] = rng.pick(kDna);
                }
            } else {
                candidate = rng.string(kMotifLength, kDna);
            }
            uint64_t record_start = load.stream.size();
            load.stream.push_back(static_cast<char>(0xFF));
            load.stream += candidate;
            int distance = 0;
            for (size_t i2 = 0; i2 < motif.size(); ++i2) {
                if (candidate[i2] != motif[i2])
                    ++distance;
            }
            if (distance <= kDistance) {
                load.truth.push_back(record_start + candidate.size());
            }
        }
        return load;
    }
};

} // namespace

std::unique_ptr<Benchmark>
makeMotomata()
{
    return std::make_unique<MotomataBenchmark>();
}

} // namespace rapid::apps
