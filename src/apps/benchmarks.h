/**
 * @file
 * The five benchmark applications of the paper's evaluation (Table 3).
 *
 * Each benchmark supplies, for one instance of its Table-3 problem
 * size:
 *
 *  - the RAPID program and concrete network arguments;
 *  - a *handcrafted* design: a C++ port of the published ANML
 *    generator / Workbench design the paper compared against
 *    (positional-encoding lattice for MOTOMATA, skip-chain for ARM,
 *    gap ladders for Gappy, plain chains for Exact and Brill);
 *  - for Brill, the regular-expression formulation (Table 4 "Re");
 *  - a deterministic synthetic workload with ground-truth report
 *    offsets, used by the correctness cross-checks;
 *  - scaled argument lists for the board-filling Table-6 experiments.
 */
#ifndef RAPID_APPS_BENCHMARKS_H
#define RAPID_APPS_BENCHMARKS_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "automata/automaton.h"
#include "lang/value.h"

namespace rapid::apps {

/** A synthetic input stream with ground truth. */
struct Workload {
    /** The device input stream (already framed / transformed). */
    std::string stream;
    /**
     * Ground-truth report offsets (0-based positions in `stream` at
     * which a correct implementation reports), sorted and unique.
     */
    std::vector<uint64_t> truth;
};

/** One evaluation application. */
class Benchmark {
  public:
    virtual ~Benchmark() = default;

    /** Short name as used in the paper's tables ("ARM", "Exact", ...). */
    virtual std::string name() const = 0;

    /** Table 3 instance description. */
    virtual std::string instanceDescription() const = 0;

    /** The RAPID program text. */
    virtual std::string rapidSource() const = 0;

    /** Network arguments for the default (Table 3) instance. */
    virtual std::vector<lang::Value> networkArgs() const = 0;

    /** The published hand-crafted design for the same instance. */
    virtual automata::Automaton handcrafted() const = 0;

    /**
     * Size of the hand-crafted design's *generator* in lines of code
     * (the paper's Table-4 "LOC" column for H rows counts the custom
     * Java/Python/Workbench effort).  Measured over the C++ port in
     * this repository's apps module.
     */
    virtual size_t handcraftedGeneratorLoc() const = 0;

    /**
     * Regular-expression formulation, one pattern per line (empty for
     * benchmarks the paper gives no regex variant for).
     */
    virtual std::vector<std::string> regexes() const { return {}; }

    /** Deterministic workload with ground truth. */
    virtual Workload workload(uint64_t seed) const = 0;

    /**
     * Arguments for a board-scale instance with @p instances parallel
     * patterns (Table 6).  Returns an empty vector for benchmarks that
     * do not scale this way (Brill is fixed-size, §7).
     */
    virtual std::vector<lang::Value>
    scaledArgs(size_t instances) const
    {
        (void)instances;
        return {};
    }
};

std::unique_ptr<Benchmark> makeExact();
std::unique_ptr<Benchmark> makeGappy();
std::unique_ptr<Benchmark> makeMotomata();
std::unique_ptr<Benchmark> makeArm();
std::unique_ptr<Benchmark> makeBrill();

/** All five, in the paper's table order (ARM, Brill, Exact, Gappy, MOTOMATA). */
std::vector<std::unique_ptr<Benchmark>> allBenchmarks();

} // namespace rapid::apps

#endif // RAPID_APPS_BENCHMARKS_H
