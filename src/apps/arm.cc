/**
 * @file
 * ARM: association rule mining (Wang, Stan, Skadron [21]).
 *
 * Table 3 instance: a candidate item-set of 24 items.  Transactions are
 * sorted item sequences framed as records; a candidate matches when all
 * of its items occur (as a subsequence) within one transaction.  The
 * published design is an item chain with self-looping "skip other
 * items" states and a saturating counter that latches when all items
 * have been seen — the counter output reports directly, which is why
 * ARM keeps clock divisor 1 in Table 5.  Support counting happens on
 * the host by counting report events.
 */
#include "apps/benchmarks.h"

#include <algorithm>

#include "support/rng.h"
#include "support/strings.h"

namespace rapid::apps {

using automata::Automaton;
using automata::CharSet;
using automata::CounterMode;
using automata::ElementId;
using automata::Port;
using automata::StartKind;

namespace {

constexpr size_t kItemsetSize = 24;
/** Item universe: printable symbols, large enough for 24-item sets. */
constexpr const char *kItems =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

std::vector<std::string>
randomItemsets(size_t count, size_t size, uint64_t seed)
{
    Rng rng(seed);
    std::string universe = kItems;
    std::vector<std::string> sets;
    sets.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        std::vector<char> items(universe.begin(), universe.end());
        rng.shuffle(items);
        std::string set(items.begin(),
                        items.begin() + static_cast<long>(size));
        std::sort(set.begin(), set.end());
        sets.push_back(std::move(set));
    }
    return sets;
}

class ArmBenchmark : public Benchmark {
  public:
    std::string name() const override { return "ARM"; }

    std::string
    instanceDescription() const override
    {
        return "24 item-set";
    }

    std::string
    rapidSource() const override
    {
        return R"(// Association rule mining: a candidate item-set matches a
// transaction (one record) when every item occurs in order.  The
// skip loop consumes unrelated items; it cannot cross the record
// separator, so partial matches die at transaction boundaries.
macro itemset(String items, int k) {
    Counter cnt;
    foreach (char c : items) {
        while (c != input());
        cnt.count();
    }
    cnt >= k;
    report;
}
network (String[] candidates, int k) {
    some (String items : candidates)
        itemset(items, 24);
}
)";
    }

    std::vector<lang::Value>
    networkArgs() const override
    {
        return {lang::Value::strArray(
                    randomItemsets(1, kItemsetSize, 0xA53)),
                lang::Value::integer(static_cast<int64_t>(kItemsetSize))};
    }

    std::vector<lang::Value>
    scaledArgs(size_t instances) const override
    {
        return {lang::Value::strArray(
                    randomItemsets(instances, kItemsetSize, 0xA53)),
                lang::Value::integer(static_cast<int64_t>(kItemsetSize))};
    }

    /** The published skip-chain + counter design. */
    static Automaton
    buildChain(const std::vector<std::string> &candidates)
    {
        Automaton design;
        for (size_t n = 0; n < candidates.size(); ++n) {
            const std::string &items = candidates[n];
            ElementId guard = design.addSte(
                CharSet::single('\xFF'), StartKind::AllInput,
                strprintf("a%zu_start", n));
            ElementId counter = design.addCounter(
                static_cast<uint32_t>(items.size()),
                CounterMode::Latch, strprintf("a%zu_cnt", n));
            design.connect(guard, counter, Port::Reset);
            ElementId prev = guard;
            for (size_t i = 0; i < items.size(); ++i) {
                CharSet skip_set = ~CharSet::single(items[i]);
                skip_set.remove(0xFF);
                ElementId skip = design.addSte(
                    skip_set, StartKind::None,
                    strprintf("a%zu_skip%zu", n, i));
                ElementId item = design.addSte(
                    CharSet::single(items[i]), StartKind::None,
                    strprintf("a%zu_item%zu", n, i));
                design.connect(prev, skip);
                design.connect(prev, item);
                design.connect(skip, skip);
                design.connect(skip, item);
                design.connect(item, counter, Port::Count);
                prev = item;
            }
            design.setReport(counter, strprintf("arm_%zu", n));
        }
        return design;
    }

    Automaton
    handcrafted() const override
    {
        return buildChain(randomItemsets(1, kItemsetSize, 0xA53));
    }

    size_t handcraftedGeneratorLoc() const override { return 31; }

    Workload
    workload(uint64_t seed) const override
    {
        std::string candidate =
            randomItemsets(1, kItemsetSize, 0xA53).front();
        Rng rng(seed);
        Workload load;
        const std::string universe = kItems;
        for (size_t t = 0; t < 600; ++t) {
            // A sorted transaction: a random subset of the universe,
            // sometimes guaranteed to contain the candidate.
            std::vector<char> transaction;
            bool force = rng.chance(0.2);
            for (char item : universe) {
                bool in_candidate =
                    candidate.find(item) != std::string::npos;
                double p = in_candidate ? (force ? 1.0 : 0.55) : 0.3;
                if (rng.chance(p))
                    transaction.push_back(item);
            }
            uint64_t record_start = load.stream.size();
            load.stream.push_back(static_cast<char>(0xFF));
            load.stream.append(transaction.begin(), transaction.end());
            // Ground truth: greedy subsequence match; report offset is
            // where the final item is consumed.
            size_t matched = 0;
            uint64_t last_pos = 0;
            for (size_t j = 0;
                 j < transaction.size() && matched < candidate.size();
                 ++j) {
                if (transaction[j] == candidate[matched]) {
                    ++matched;
                    last_pos = record_start + 1 + j;
                }
            }
            if (matched == candidate.size())
                load.truth.push_back(last_pos);
        }
        return load;
    }
};

} // namespace

std::unique_ptr<Benchmark>
makeArm()
{
    return std::make_unique<ArmBenchmark>();
}

} // namespace rapid::apps
