/**
 * @file
 * Brill tagging rule rewriting (Zhou et al. [23]).
 *
 * Table 3 instance: 219 contextual re-write rules over a tagged-token
 * stream ("word/TAG word/TAG ...").  The authors' original rule file is
 * not public; we synthesize a 219-rule population from Penn-style tags
 * using the Brill contextual templates (previous-tag, next-tag, and
 * current-word triggers), which preserves the structural mix the
 * automata sizes depend on.  Three formulations are provided, matching
 * Table 4's three Brill rows: the RAPID program (R), the hand-crafted
 * chain generator (H), and regular expressions (Re).
 */
#include "apps/benchmarks.h"

#include <algorithm>

#include "support/rng.h"
#include "support/strings.h"

namespace rapid::apps {

using automata::Automaton;
using automata::CharSet;
using automata::ElementId;
using automata::StartKind;

namespace {

constexpr size_t kRuleCount = 219;

const std::vector<std::string> &
tagSet()
{
    static const std::vector<std::string> tags = {
        "CC", "CD", "DT", "EX", "FW", "IN", "JJ", "JJR", "JJS", "MD",
        "NN", "NNS", "NNP", "PDT", "POS", "PRP", "RB", "RBR", "RBS",
        "RP", "TO", "UH", "VB", "VBD", "VBG", "VBN", "VBP", "VBZ",
        "WDT", "WP", "WRB",
    };
    return tags;
}

/**
 * One contextual rule: match token "…/prev <word>/cur " — re-write
 * triggers when a token tagged `cur` follows a token tagged `prev`.
 * When `word` is non-empty the rule additionally pins the second
 * token's word (the current-word template).
 */
struct BrillRule {
    std::string prev;
    std::string cur;
    std::string word; // empty = any word
};

std::vector<BrillRule>
synthesizeRules(size_t count, uint64_t seed)
{
    Rng rng(seed);
    const auto &tags = tagSet();
    std::vector<BrillRule> rules;
    rules.reserve(count);
    while (rules.size() < count) {
        BrillRule rule;
        rule.prev = tags[rng.below(tags.size())];
        rule.cur = tags[rng.below(tags.size())];
        if (rule.prev == rule.cur)
            continue;
        if (rng.chance(0.25))
            rule.word = rng.string(3 + rng.below(5),
                                   "abcdefghijklmnopqrstuvwxyz");
        // Avoid duplicates so every rule contributes distinct automata.
        bool duplicate = false;
        for (const BrillRule &existing : rules) {
            if (existing.prev == rule.prev &&
                existing.cur == rule.cur &&
                existing.word == rule.word) {
                duplicate = true;
                break;
            }
        }
        if (!duplicate)
            rules.push_back(std::move(rule));
    }
    return rules;
}

class BrillBenchmark : public Benchmark {
  public:
    std::string name() const override { return "Brill"; }

    std::string
    instanceDescription() const override
    {
        return "219 rules";
    }

    std::string
    rapidSource() const override
    {
        return R"(// Brill contextual rule matching over a "word/TAG " token
// stream.  Each rule fires where a token tagged `cur` (optionally
// with a specific word) follows a token tagged `prev`.
macro brill_rule(String prev, String word, String cur) {
    '/' == input();
    foreach (char c : prev) c == input();
    ' ' == input();
    if (word == "") {
        while ('/' != input());
    } else {
        foreach (char c : word) c == input();
        '/' == input();
    }
    foreach (char c : cur) c == input();
    ' ' == input();
    report;
}
network (String[][] rules) {
    some (String[] r : rules) {
        whenever (ALL_INPUT == input()) {
            brill_rule(r[0], r[1], r[2]);
        }
    }
}
)";
    }

    std::vector<lang::Value>
    networkArgs() const override
    {
        auto rules = synthesizeRules(kRuleCount, 0xB9111);
        lang::ValueList encoded;
        encoded.reserve(rules.size());
        for (const BrillRule &rule : rules) {
            encoded.push_back(lang::Value::strArray(
                {rule.prev, rule.word, rule.cur}));
        }
        return {lang::Value::array(lang::Type(lang::BaseType::String, 1),
                                   std::move(encoded))};
    }

    std::vector<std::string>
    regexes() const override
    {
        auto rules = synthesizeRules(kRuleCount, 0xB9111);
        std::vector<std::string> patterns;
        patterns.reserve(rules.size());
        for (const BrillRule &rule : rules) {
            std::string word =
                rule.word.empty() ? "[^/]*" : rule.word;
            patterns.push_back("/" + rule.prev + " " + word + "/" +
                               rule.cur + " ");
        }
        return patterns;
    }

    /** Hand-crafted chain generator (port of the authors' Java). */
    static Automaton
    buildChains(const std::vector<BrillRule> &rules)
    {
        Automaton design;
        for (size_t n = 0; n < rules.size(); ++n) {
            const BrillRule &rule = rules[n];
            std::string head = "/" + rule.prev + " ";
            ElementId prev = automata::kNoElement;
            size_t serial = 0;
            auto chain = [&](char symbol, StartKind start) {
                ElementId ste = design.addSte(
                    CharSet::single(symbol), start,
                    strprintf("b%zu_%zu", n, serial++));
                if (prev != automata::kNoElement)
                    design.connect(prev, ste);
                prev = ste;
            };
            for (size_t i = 0; i < head.size(); ++i) {
                chain(head[i],
                      i == 0 ? StartKind::AllInput : StartKind::None);
            }
            if (rule.word.empty()) {
                // Word wildcard: a self-looping [^/] skip plus the '/'
                // delimiter.
                CharSet skip_set = ~CharSet::single('/');
                skip_set.remove(0xFF);
                ElementId skip = design.addSte(
                    skip_set, StartKind::None,
                    strprintf("b%zu_skip", n));
                ElementId delim = design.addSte(
                    CharSet::single('/'), StartKind::None,
                    strprintf("b%zu_delim", n));
                design.connect(prev, skip);
                design.connect(prev, delim);
                design.connect(skip, skip);
                design.connect(skip, delim);
                prev = delim;
            } else {
                for (char c : rule.word)
                    chain(c, StartKind::None);
                chain('/', StartKind::None);
            }
            for (char c : rule.cur)
                chain(c, StartKind::None);
            chain(' ', StartKind::None);
            design.setReport(prev, strprintf("brill_%zu", n));
        }
        return design;
    }

    Automaton
    handcrafted() const override
    {
        return buildChains(synthesizeRules(kRuleCount, 0xB9111));
    }

    size_t handcraftedGeneratorLoc() const override { return 47; }

    Workload
    workload(uint64_t seed) const override
    {
        auto rules = synthesizeRules(kRuleCount, 0xB9111);
        Rng rng(seed);
        const auto &tags = tagSet();
        Workload load;
        // A tagged corpus; occasionally force a rule-trigger bigram.
        size_t tokens = 4000;
        std::string pending_tag;
        std::string pending_word;
        for (size_t t = 0; t < tokens; ++t) {
            std::string word =
                rng.string(2 + rng.below(6),
                           "abcdefghijklmnopqrstuvwxyz");
            std::string tag = tags[rng.below(tags.size())];
            if (!pending_tag.empty()) {
                tag = pending_tag;
                if (!pending_word.empty())
                    word = pending_word;
                pending_tag.clear();
                pending_word.clear();
            } else if (rng.chance(0.1)) {
                const BrillRule &rule = rules[rng.below(rules.size())];
                tag = rule.prev;
                pending_tag = rule.cur;
                pending_word = rule.word;
            }
            load.stream += word;
            load.stream.push_back('/');
            load.stream += tag;
            load.stream.push_back(' ');
        }
        load.truth = groundTruth(rules, load.stream);
        return load;
    }

  private:
    /** Scan the corpus with each rule pattern (reference matcher). */
    static std::vector<uint64_t>
    groundTruth(const std::vector<BrillRule> &rules,
                const std::string &stream)
    {
        std::vector<uint64_t> truth;
        for (const BrillRule &rule : rules) {
            std::string head = "/" + rule.prev + " ";
            for (size_t pos = 0;
                 pos + head.size() <= stream.size(); ++pos) {
                if (stream.compare(pos, head.size(), head) != 0)
                    continue;
                size_t word_start = pos + head.size();
                // The word: shortest run to the next '/'.
                size_t slash = stream.find('/', word_start);
                if (slash == std::string::npos)
                    continue;
                if (!rule.word.empty() &&
                    stream.substr(word_start, slash - word_start) !=
                        rule.word) {
                    continue;
                }
                std::string tail = rule.cur + " ";
                if (stream.compare(slash + 1, tail.size(), tail) != 0)
                    continue;
                truth.push_back(slash + tail.size());
            }
        }
        std::sort(truth.begin(), truth.end());
        truth.erase(std::unique(truth.begin(), truth.end()),
                    truth.end());
        return truth;
    }

};

} // namespace

std::unique_ptr<Benchmark>
makeBrill()
{
    return std::make_unique<BrillBenchmark>();
}

} // namespace rapid::apps
