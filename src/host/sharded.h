/**
 * @file
 * Sharded multi-chip execution engine.
 *
 * Models the AP board's runtime parallelism: every chip receives the
 * same broadcast symbol stream and executes only the blocks configured
 * onto it.  A ShardedExecutor owns one compiled BatchSimulator per
 * shard of a ShardPlan (see ap/sharding.h), fans the full input over a
 * worker pool — one logical "chip" per shard — and merges the
 * per-shard report streams back into a single deterministic stream in
 * the full design's identity space.
 *
 * Determinism: shard-local report events come out of the batch engine
 * sorted by (offset, local element id); shard extraction preserves
 * ascending global id order, so each remapped per-shard stream is
 * already sorted by (offset, global element id).  The final k-way
 * merge therefore yields exactly the canonically ordered stream the
 * scalar and batch engines produce for the whole design, regardless of
 * how shards were scheduled.
 *
 * Profiling mirrors the other engines: per-shard profiles are remapped
 * into the full design's element space and merged, and the logical
 * cycle count is the broadcast stream length (every chip consumes the
 * same symbols in lock-step), so heatmaps, series, and totals are
 * engine-identical with Engine::Scalar and Engine::Batch.
 */
#ifndef RAPID_HOST_SHARDED_H
#define RAPID_HOST_SHARDED_H

#include <memory>
#include <string_view>
#include <vector>

#include "ap/sharding.h"
#include "automata/batch_simulator.h"
#include "obs/profile.h"

namespace rapid::host {

/** Executes a sharded design; one compiled engine per shard. */
class ShardedExecutor {
  public:
    /**
     * Take ownership of @p plan and compile every shard.
     * @throws CompileError when a shard design fails validation.
     */
    explicit ShardedExecutor(ap::ShardPlan plan);

    size_t shardCount() const { return _plan.shards.size(); }

    const ap::ShardPlan &plan() const { return _plan; }

    /**
     * Broadcast @p input to every shard from power-on state and return
     * the merged report stream in full-design element ids, sorted by
     * (offset, element).
     *
     * @p threads caps the worker pool (0 = hardware concurrency),
     * clamped to the shard count; 1 executes shards inline.  When
     * @p profile is non-null every shard is profiled and the remapped
     * union is merged into it with cycles equal to the stream length.
     */
    std::vector<automata::ReportEvent>
    run(std::string_view input, unsigned threads = 0,
        obs::ExecutionProfile *profile = nullptr) const;

  private:
    ap::ShardPlan _plan;
    std::vector<std::unique_ptr<automata::BatchSimulator>> _engines;
};

} // namespace rapid::host

#endif // RAPID_HOST_SHARDED_H
