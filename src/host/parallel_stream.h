/**
 * @file
 * Single-stream parallel execution engine with seam-replay
 * reconciliation.
 *
 * The batch engine processes one stream on one core; runBatch() only
 * scales across *independent* streams.  ParallelStreamExecutor makes
 * one long stream scale across cores:
 *
 *  1. **Chunk.** The input splits into fixed-size chunks (auto-sized
 *     from the worker count, or pinned via Options::chunkSize).
 *  2. **Speculate.** A worker pool runs every chunk concurrently on
 *     the shared compiled BatchSimulator.  Chunk 0 starts from true
 *     power-on state; every later chunk starts from the *all-states
 *     speculative frontier* (every STE lane enabled, sequential state
 *     zeroed).  For STE-only designs the enable-set transition is
 *     monotone, so the speculative frontier over-approximates any
 *     reachable one and typically collapses to the exact execution
 *     within a pattern length.  Each speculative chunk records entry
 *     snapshots (frontier + counters + gate signals) for its first
 *     Options::snapshotWindow positions, its speculative reports, and
 *     its exit cursor.
 *  3. **Reconcile.** A sequential pass walks the seams: chunk k is
 *     replayed symbol-by-symbol from chunk k-1's *exact* exit
 *     frontier until the replay state equals the recorded speculative
 *     snapshot at the same position — from there the speculative
 *     execution *is* the exact execution, so its remaining reports
 *     are spliced in verbatim and its exit cursor becomes the next
 *     seam's exact entry.  A chunk that never converges inside the
 *     snapshot window (counters counting from stream start, pathological
 *     gate networks) is replayed to its end — slower, never wrong.
 *
 * The merged stream is byte-identical to the scalar engine's
 * canonical (offset, element) stream: reports appear in ascending
 * chunk order, cycle order within chunks, element-id order within
 * cycles — exactly the batch engine's run() order.  Enforced by the
 * golden conformance suite, directed seam tests, and fork `i` of the
 * differential fuzzing oracle.
 *
 * Profiled runs (non-null profile) take the exact, instrumented
 * batch path instead of speculating, so execution profiles stay
 * engine-identical with scalar/batch/sharded.
 */
#ifndef RAPID_HOST_PARALLEL_STREAM_H
#define RAPID_HOST_PARALLEL_STREAM_H

#include <cstddef>
#include <string_view>
#include <vector>

#include "automata/automaton.h"
#include "automata/batch_simulator.h"
#include "obs/profile.h"

namespace rapid::host {

/** Tuning knobs for ParallelStreamExecutor (namespace scope so the
 *  defaults are complete before the executor class uses them). */
struct ParallelOptions {
    /**
     * Worker threads: 0 resolves RAPID_THREADS from the
     * environment, then std::thread::hardware_concurrency().
     */
    unsigned threads = 0;
    /**
     * Chunk length in symbols; 0 sizes chunks automatically
     * (several per worker, with a floor so tiny inputs stay
     * sequential).  Tests pin small sizes to force seams.
     */
    size_t chunkSize = 0;
    /**
     * Entry snapshots recorded per speculative chunk: the replay
     * convergence horizon.  Replays that do not converge within
     * this many positions fall back to replaying the whole chunk.
     */
    size_t snapshotWindow = 512;
};

/** Chunks one input stream across a worker pool; exact results. */
class ParallelStreamExecutor {
  public:
    using Options = ParallelOptions;

    /** What one run did at its seams (for tests and telemetry). */
    struct RunStats {
        /** Chunks the input was split into (1 = no speculation). */
        size_t chunks = 0;
        /** Seams where replay converged inside the snapshot window. */
        size_t convergedSeams = 0;
        /** Symbols re-executed during reconciliation. */
        size_t replayedSymbols = 0;
    };

    /**
     * Compile @p design into a batch engine.  The design is borrowed
     * and must outlive the executor.
     * @throws CompileError when the design fails validation.
     */
    explicit ParallelStreamExecutor(const automata::Automaton &design,
                                    Options options = Options());
    explicit ParallelStreamExecutor(automata::Automaton &&,
                                    Options = Options()) = delete;

    /**
     * Execute @p input from power-on state; the report stream equals
     * run() on the batch engine event for event.  When @p profile is
     * non-null the run is exact and instrumented (no speculation).
     * @p stats, when non-null, receives seam accounting.
     */
    std::vector<automata::ReportEvent>
    run(std::string_view input,
        obs::ExecutionProfile *profile = nullptr,
        RunStats *stats = nullptr) const;

    /** Resolved worker count (after RAPID_THREADS / hardware). */
    unsigned threads() const { return _threads; }

    /** The chunk length run() will use for @p inputSize symbols. */
    size_t chunkSizeFor(size_t inputSize) const;

    /** The underlying compiled engine (kernel name, lane counts). */
    const automata::BatchSimulator &engine() const { return _batch; }

  private:
    const automata::Automaton &_design;
    automata::BatchSimulator _batch;
    Options _options;
    unsigned _threads = 1;
};

} // namespace rapid::host

#endif // RAPID_HOST_PARALLEL_STREAM_H
