/**
 * @file
 * Network-argument annotation files.
 *
 * §5: "Our technique takes two files as input: the RAPID program and a
 * file annotating properties of the arguments to the network
 * parameters."  This module defines that second file.  Format: one
 * argument per line, in network-parameter order:
 *
 *     # comment / blank lines ignored
 *     int: 5
 *     bool: true
 *     char: x            (or a \xHH escape)
 *     string: ATCGAC
 *     ints: 1, 2, 3
 *     strings: ACGT, TTTT, CCCC
 *     stringss: NN, foo, VB; DT, , JJ     (String[][]: ';' rows)
 *
 * Values are checked positionally against the network's declared
 * parameter types at compile time.
 */
#ifndef RAPID_HOST_ARGFILE_H
#define RAPID_HOST_ARGFILE_H

#include <string>
#include <vector>

#include "lang/value.h"

namespace rapid::host {

/** Parse annotation text into network argument values. */
std::vector<lang::Value> parseArgFile(const std::string &text);

/** Read and parse an annotation file from disk. */
std::vector<lang::Value> loadArgFile(const std::string &path);

} // namespace rapid::host

#endif // RAPID_HOST_ARGFILE_H
