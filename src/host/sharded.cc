#include "host/sharded.h"

#include <algorithm>
#include <atomic>
#include <queue>
#include <thread>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/timer.h"

namespace rapid::host {

using automata::ElementId;
using automata::ReportEvent;

ShardedExecutor::ShardedExecutor(ap::ShardPlan plan)
    : _plan(std::move(plan))
{
    _engines.reserve(_plan.shards.size());
    for (const ap::Shard &shard : _plan.shards) {
        _engines.push_back(
            std::make_unique<automata::BatchSimulator>(shard.design));
    }
}

namespace {

/** Remap a shard-local profile into the full design's element space. */
obs::ExecutionProfile
remapProfile(const obs::ExecutionProfile &local,
             const std::vector<ElementId> &to_global,
             size_t global_elements)
{
    obs::ExecutionProfile global;
    global.cycles = local.cycles;
    global.activations = local.activations;
    global.reports = local.reports;
    global.activeSeries = local.activeSeries;
    global.reportSeries = local.reportSeries;
    global.cyclesPerBucket = local.cyclesPerBucket;
    global.ensureElements(global_elements);
    const size_t known =
        std::min(local.elementActivations.size(), to_global.size());
    for (size_t i = 0; i < known; ++i)
        global.elementActivations[to_global[i]] +=
            local.elementActivations[i];
    return global;
}

/**
 * K-way merge of per-shard event streams (each already sorted by
 * (offset, element) in global ids) into one sorted stream.
 */
std::vector<ReportEvent>
mergeStreams(std::vector<std::vector<ReportEvent>> &streams)
{
    size_t total = 0;
    for (const auto &stream : streams)
        total += stream.size();
    std::vector<ReportEvent> merged;
    merged.reserve(total);

    // (event, stream index): the stream index breaks exact ties
    // deterministically (possible only for duplicate-id-free designs
    // never, but cheap insurance).
    using Head = std::pair<ReportEvent, size_t>;
    auto later = [](const Head &a, const Head &b) {
        if (!(a.first == b.first))
            return b.first < a.first;
        return a.second > b.second;
    };
    std::priority_queue<Head, std::vector<Head>, decltype(later)> heap(
        later);
    std::vector<size_t> cursor(streams.size(), 0);
    for (size_t s = 0; s < streams.size(); ++s) {
        if (!streams[s].empty())
            heap.push({streams[s][0], s});
    }
    while (!heap.empty()) {
        auto [event, s] = heap.top();
        heap.pop();
        merged.push_back(event);
        size_t next = ++cursor[s];
        if (next < streams[s].size())
            heap.push({streams[s][next], s});
    }
    return merged;
}

} // namespace

std::vector<ReportEvent>
ShardedExecutor::run(std::string_view input, unsigned threads,
                     obs::ExecutionProfile *profile) const
{
    const size_t shards = _plan.shards.size();
    if (shards == 0) {
        // Empty design: no reports, but the broadcast stream was still
        // consumed — keep the logical cycle count engine-identical.
        if (profile)
            profile->cycles += input.size();
        return {};
    }

    unsigned workers = threads != 0
                           ? threads
                           : std::thread::hardware_concurrency();
    if (workers == 0)
        workers = 1;
    workers = static_cast<unsigned>(
        std::min<size_t>(workers, shards));

    const bool stats = obs::statsEnabled();
    Timer wall;
    std::vector<double> busy(shards, 0.0);
    std::vector<std::vector<ReportEvent>> streams(shards);
    std::vector<obs::ExecutionProfile> shard_profiles(
        profile ? shards : 0);

    auto process = [&](size_t s) {
        obs::Span span("shard", "device");
        const ap::Shard &shard = _plan.shards[s];
        std::vector<ReportEvent> events;
        if (profile) {
            events = _engines[s]->run(input, shard_profiles[s]);
        } else {
            events = _engines[s]->run(input);
        }
        // Remap to full-design ids; ascending toGlobal keeps the
        // shard stream sorted by (offset, global element).
        for (ReportEvent &event : events)
            event.element = shard.toGlobal[event.element];
        streams[s] = std::move(events);
    };
    auto timed = [&](size_t s) {
        if (stats) {
            Timer timer;
            process(s);
            busy[s] = timer.seconds();
        } else {
            process(s);
        }
    };

    if (workers <= 1) {
        for (size_t s = 0; s < shards; ++s)
            timed(s);
    } else {
        std::atomic<size_t> cursor{0};
        auto worker = [&]() {
            while (true) {
                const size_t s =
                    cursor.fetch_add(1, std::memory_order_relaxed);
                if (s >= shards)
                    return;
                timed(s);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t)
            pool.emplace_back(worker);
        for (std::thread &thread : pool)
            thread.join();
    }

    if (profile) {
        obs::ExecutionProfile combined;
        for (size_t s = 0; s < shards; ++s) {
            combined.merge(remapProfile(shard_profiles[s],
                                        _plan.shards[s].toGlobal,
                                        _plan.totalElements));
        }
        // Chips consume the broadcast stream in lock-step: the logical
        // cycle count is the stream length, not the per-shard sum.
        combined.cycles = input.size();
        profile->merge(combined);
    }

    obs::Span merge_span("shard_merge", "device");
    std::vector<ReportEvent> merged = mergeStreams(streams);

    if (stats) {
        auto &registry = obs::MetricsRegistry::instance();
        const double wall_s = wall.seconds();
        double busy_total = 0.0;
        auto &busy_ms = registry.histogram("sim.shard.busy_ms");
        for (size_t s = 0; s < shards; ++s) {
            busy_total += busy[s];
            busy_ms.record(busy[s] * 1e3);
        }
        registry.counter("sim.shard.runs").add(shards);
        registry.counter("sim.shard.reports").add(merged.size());
        registry.gauge("sim.shard.workers")
            .set(static_cast<double>(workers));
        registry.gauge("sim.shard.utilization")
            .set(wall_s > 0.0 ? busy_total /
                                    (wall_s * static_cast<double>(
                                                  workers))
                              : 0.0);
    }
    return merged;
}

} // namespace rapid::host
