#include "host/device.h"

namespace rapid::host {

Device::Device(automata::Automaton design) : _design(std::move(design))
{
    _simulator = std::make_unique<automata::Simulator>(_design);
}

Device::Device(const ap::TiledDesign &tiled)
{
    size_t blocks = tiled.totalBlocks;
    _design = ap::replicate(tiled.blockImage, blocks);
    _simulator = std::make_unique<automata::Simulator>(_design);
}

std::vector<HostReport>
Device::run(std::string_view input)
{
    std::vector<HostReport> out;
    for (const automata::ReportEvent &event : _simulator->run(input)) {
        HostReport report;
        report.offset = event.offset;
        report.element = _design[event.element].id;
        report.code = _design[event.element].reportCode;
        out.push_back(std::move(report));
    }
    return out;
}

} // namespace rapid::host
