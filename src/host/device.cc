#include "host/device.h"

#include <algorithm>
#include <cstdlib>

#include "ap/placement.h"
#include "ap/sharding.h"
#include "automata/match_kernels.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "support/error.h"

namespace rapid::host {

Engine
parseEngine(const std::string &name)
{
    if (name == "scalar")
        return Engine::Scalar;
    if (name == "batch")
        return Engine::Batch;
    if (name == "sharded")
        return Engine::Sharded;
    if (name == "parallel")
        return Engine::Parallel;
    throw Error("unknown engine '" + name +
                "' (expected scalar, batch, sharded, or parallel)");
}

const char *
engineName(Engine engine)
{
    switch (engine) {
      case Engine::Batch:
        return "batch";
      case Engine::Sharded:
        return "sharded";
      case Engine::Parallel:
        return "parallel";
      case Engine::Scalar:
        break;
    }
    return "scalar";
}

Engine
engineFromEnv(Engine fallback)
{
    const char *value = std::getenv("RAPID_ENGINE");
    if (value == nullptr || *value == '\0')
        return fallback;
    return parseEngine(value);
}

namespace {

/**
 * Conformance aid: with RAPID_IMAGE_ROUNDTRIP=1 in the environment,
 * every fresh-compile Device load first serializes its design to
 * .apimg bytes and reloads it, so any consumer (the bundled examples,
 * embedding hosts) exercises the image codec end-to-end.  A design
 * that survives the round trip is bit-identical, so behaviour is
 * unchanged — anything else is exactly the bug the check exists to
 * surface.
 */
bool
imageRoundTripEnabled()
{
    static const bool enabled = [] {
        const char *value = std::getenv("RAPID_IMAGE_ROUNDTRIP");
        return value != nullptr && *value != '\0' &&
               std::string_view(value) != "0";
    }();
    return enabled;
}

} // namespace

Device::Device(automata::Automaton design, Engine engine,
               unsigned shards, unsigned threads)
    : _design(std::move(design)), _engine(engine)
{
    if (imageRoundTripEnabled()) {
        ap::DesignImage image;
        image.design = std::move(_design);
        _design =
            ap::deserializeImage(ap::serializeImage(image)).design;
    }
    configure(nullptr, shards, threads);
}

Device::Device(const ap::TiledDesign &tiled, Engine engine,
               unsigned shards, unsigned threads)
    : Device(ap::replicate(tiled.blockImage, tiled.totalBlocks),
             engine, shards, threads)
{
}

Device::Device(const ap::DesignImage &image, Engine engine,
               unsigned shards, unsigned threads)
    : _design(image.design), _engine(engine)
{
    configure(image.placed ? &image.placement : nullptr, shards,
              threads);
}

void
Device::configure(const ap::PlacementResult *placement,
                  unsigned shards, unsigned threads)
{
    // "configure" covers engine construction: validation plus (for the
    // batch engines) compiling the design into match/successor tables —
    // the software analogue of loading a device image.
    obs::Span span("configure");
    if (_engine == Engine::Batch) {
        _batch = std::make_unique<automata::BatchSimulator>(_design);
    } else if (_engine == Engine::Parallel) {
        ParallelStreamExecutor::Options options;
        options.threads = threads;
        _parallel = std::make_unique<ParallelStreamExecutor>(_design,
                                                             options);
    } else if (_engine == Engine::Sharded) {
        ap::Sharder sharder;
        if (placement != nullptr) {
            // A precompiled image carries its placement; shard
            // grouping reuses it, so no place_route happens on load.
            _sharded = std::make_unique<ShardedExecutor>(
                sharder.partition(_design, *placement, shards));
        } else {
            // The shard grouping only needs the block *assignment* —
            // routing-cut refinement moves elements within components
            // and cannot change which shard a component lands in, so
            // skip it.
            ap::PlacementOptions options;
            options.refineEffort = 0;
            ap::PlacementEngine placer({}, options);
            _sharded = std::make_unique<ShardedExecutor>(
                sharder.partition(_design, placer.place(_design),
                                  shards));
        }
    } else {
        _simulator = std::make_unique<automata::Simulator>(_design);
    }
}

std::vector<HostReport>
Device::enrich(std::vector<automata::ReportEvent> events) const
{
    // Canonical host-visible order: ascending offset, then element id.
    // The scalar engine emits within-cycle events in activation
    // discovery order and the batch engines in element-id order;
    // sorting here makes every engine's stream byte-identical.
    std::stable_sort(events.begin(), events.end());
    std::vector<HostReport> out;
    out.reserve(events.size());
    for (const automata::ReportEvent &event : events) {
        HostReport report;
        report.offset = event.offset;
        report.element = _design[event.element].id;
        report.code = _design[event.element].reportCode;
        out.push_back(std::move(report));
    }
    return out;
}

bool
Device::profilingActive() const
{
    return _forceProfiling || obs::statsEnabled();
}

const char *
Device::kernelName() const
{
    if (_engine == Engine::Scalar)
        return "none"; // the interpreter has no vectorized hot loop
    if (_batch)
        return _batch->kernel();
    // Sharded / parallel executors build BatchSimulators internally,
    // all of which dispatch to the same active kernel tier.
    return automata::kernels::active().name;
}

void
Device::publishLive()
{
    if (!obs::statsEnabled())
        return;
    const obs::ExecutionProfile *live =
        _live.load(std::memory_order_acquire);
    if (live == nullptr)
        return;
    std::lock_guard<std::mutex> guard(_publishMutex);
    if (_live.load(std::memory_order_acquire) != live)
        return; // the run settled while we waited on the lock
    // Unsynchronized reads of the engine's in-flight totals: a few
    // increments of staleness is fine for a scrape.
    const uint64_t cycles = live->cycles;
    const uint64_t activations = live->activations;
    const uint64_t reports = live->reports;
    auto &registry = obs::MetricsRegistry::instance();
    if (cycles > _publishedCycles) {
        registry.counter("sim.cycles").add(cycles - _publishedCycles);
        _publishedCycles = cycles;
    }
    if (activations > _publishedActivations) {
        registry.counter("sim.activations")
            .add(activations - _publishedActivations);
        _publishedActivations = activations;
    }
    if (reports > _publishedReports) {
        registry.counter("sim.reports")
            .add(reports - _publishedReports);
        _publishedReports = reports;
    }
}

void
Device::recordRun(const obs::ExecutionProfile &delta)
{
    // Detach the live pointer first: scrapes arriving from here on see
    // the settled registry totals, not the dying stack profile.
    _live.store(nullptr, std::memory_order_release);
    std::lock_guard<std::mutex> guard(_publishMutex);
    uint64_t published_cycles = _publishedCycles;
    uint64_t published_activations = _publishedActivations;
    uint64_t published_reports = _publishedReports;
    _publishedCycles = 0;
    _publishedActivations = 0;
    _publishedReports = 0;

    _profile.merge(delta);
    if (!obs::statsEnabled())
        return;
    // Identical metric names for both engines — the parity tests and
    // the --stats consumers rely on this.  Live scrapes may have
    // published part of this run already; add only the remainder so
    // end-of-run totals stay exact.
    auto &registry = obs::MetricsRegistry::instance();
    registry.counter("sim.cycles")
        .add(delta.cycles - std::min(published_cycles, delta.cycles));
    registry.counter("sim.activations")
        .add(delta.activations -
             std::min(published_activations, delta.activations));
    registry.counter("sim.reports")
        .add(delta.reports -
             std::min(published_reports, delta.reports));
    registry.counter("sim.runs").add(1);
    // Bucket means approximate the active-per-cycle distribution
    // without a per-cycle histogram record.
    auto &active = registry.histogram("sim.active_per_cycle");
    for (size_t i = 0; i < delta.activeSeries.size(); ++i) {
        const uint64_t width = delta.cyclesPerBucket;
        active.record(static_cast<double>(delta.activeSeries[i]) /
                      static_cast<double>(width));
    }
}

std::vector<HostReport>
Device::run(std::string_view input)
{
    obs::Span span("stream", "device");
    if (!profilingActive()) {
        if (_engine == Engine::Batch)
            return enrich(_batch->run(input));
        if (_engine == Engine::Parallel)
            return enrich(_parallel->run(input));
        if (_engine == Engine::Sharded)
            return enrich(_sharded->run(input));
        return enrich(_simulator->run(input));
    }

    obs::ExecutionProfile delta;
    _live.store(&delta, std::memory_order_release);
    std::vector<HostReport> out;
    if (_engine == Engine::Batch) {
        out = enrich(_batch->run(input, delta));
    } else if (_engine == Engine::Parallel) {
        out = enrich(_parallel->run(input, &delta));
    } else if (_engine == Engine::Sharded) {
        out = enrich(_sharded->run(input, 0, &delta));
    } else {
        _simulator->setProfile(&delta);
        auto events = _simulator->run(input);
        _simulator->setProfile(nullptr);
        out = enrich(std::move(events));
    }
    recordRun(delta);
    return out;
}

std::vector<std::vector<HostReport>>
Device::runBatch(const std::vector<std::string> &inputs,
                 unsigned threads)
{
    obs::Span span("stream", "device");
    const bool profiling = profilingActive();
    obs::ExecutionProfile delta;
    if (profiling)
        _live.store(&delta, std::memory_order_release);

    std::vector<std::vector<HostReport>> out;
    out.reserve(inputs.size());
    if (_engine == Engine::Batch) {
        std::vector<std::string_view> views(inputs.begin(),
                                            inputs.end());
        auto batches = _batch->runBatch(views, threads,
                                        profiling ? &delta : nullptr);
        for (auto &events : batches)
            out.push_back(enrich(std::move(events)));
    } else if (_engine == Engine::Sharded) {
        // Streams run one after another; each stream's shards fan out
        // over the worker pool.  Result i is exactly run(inputs[i]).
        for (const std::string &input : inputs) {
            out.push_back(enrich(_sharded->run(
                input, threads, profiling ? &delta : nullptr)));
        }
    } else if (_engine == Engine::Parallel) {
        // Streams run one after another; each stream's chunks fan out
        // over the worker pool.  Result i is exactly run(inputs[i]).
        for (const std::string &input : inputs) {
            out.push_back(enrich(
                _parallel->run(input, profiling ? &delta : nullptr)));
        }
    } else {
        // One fresh profile per stream, merged — the same overlay-at-
        // offset-0 series semantics the batch engine produces.
        for (const std::string &input : inputs) {
            obs::ExecutionProfile stream_profile;
            if (profiling)
                _simulator->setProfile(&stream_profile);
            out.push_back(enrich(_simulator->run(input)));
            if (profiling) {
                _simulator->setProfile(nullptr);
                delta.merge(stream_profile);
            }
        }
    }
    if (profiling)
        recordRun(delta);
    return out;
}

} // namespace rapid::host
