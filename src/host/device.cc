#include "host/device.h"

#include "support/error.h"

namespace rapid::host {

Engine
parseEngine(const std::string &name)
{
    if (name == "scalar")
        return Engine::Scalar;
    if (name == "batch")
        return Engine::Batch;
    throw Error("unknown engine '" + name +
                "' (expected scalar or batch)");
}

const char *
engineName(Engine engine)
{
    return engine == Engine::Batch ? "batch" : "scalar";
}

Device::Device(automata::Automaton design, Engine engine)
    : _design(std::move(design)), _engine(engine)
{
    if (_engine == Engine::Batch)
        _batch = std::make_unique<automata::BatchSimulator>(_design);
    else
        _simulator = std::make_unique<automata::Simulator>(_design);
}

Device::Device(const ap::TiledDesign &tiled, Engine engine)
    : Device(ap::replicate(tiled.blockImage, tiled.totalBlocks),
             engine)
{
}

std::vector<HostReport>
Device::enrich(const std::vector<automata::ReportEvent> &events) const
{
    std::vector<HostReport> out;
    out.reserve(events.size());
    for (const automata::ReportEvent &event : events) {
        HostReport report;
        report.offset = event.offset;
        report.element = _design[event.element].id;
        report.code = _design[event.element].reportCode;
        out.push_back(std::move(report));
    }
    return out;
}

std::vector<HostReport>
Device::run(std::string_view input)
{
    if (_engine == Engine::Batch)
        return enrich(_batch->run(input));
    return enrich(_simulator->run(input));
}

std::vector<std::vector<HostReport>>
Device::runBatch(const std::vector<std::string> &inputs,
                 unsigned threads)
{
    std::vector<std::vector<HostReport>> out;
    out.reserve(inputs.size());
    if (_engine == Engine::Batch) {
        std::vector<std::string_view> views(inputs.begin(),
                                            inputs.end());
        for (const auto &events : _batch->runBatch(views, threads))
            out.push_back(enrich(events));
        return out;
    }
    for (const std::string &input : inputs)
        out.push_back(enrich(_simulator->run(input)));
    return out;
}

} // namespace rapid::host
