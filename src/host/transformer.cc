#include "host/transformer.h"

#include <algorithm>

#include "support/error.h"

namespace rapid::host {

void
InputTransformer::setPeriod(const std::string &counter_name,
                            uint64_t period)
{
    for (lang::SymbolInjection &injection : _injections) {
        if (injection.counterName == counter_name) {
            injection.period = period;
            return;
        }
    }
    throw CompileError("no reserved-symbol injection for counter '" +
                       counter_name + "'");
}

std::string
InputTransformer::transformRecord(const std::string &record) const
{
    // Sort insertions by position so one pass suffices.
    std::vector<lang::SymbolInjection> pending = _injections;
    for (const lang::SymbolInjection &injection : pending) {
        if (injection.period == 0) {
            throw CompileError(
                "injection period for counter '" + injection.counterName +
                "' was not inferable; call setPeriod() (§5.3)");
        }
    }
    std::sort(pending.begin(), pending.end(),
              [](const auto &a, const auto &b) {
                  return a.period < b.period;
              });

    std::string out;
    out.reserve(record.size() + pending.size());
    size_t next = 0;
    for (uint64_t consumed = 0; consumed < record.size(); ++consumed) {
        while (next < pending.size() &&
               pending[next].period == consumed) {
            out.push_back(static_cast<char>(pending[next].symbol));
            ++next;
        }
        out.push_back(record[consumed]);
    }
    while (next < pending.size()) {
        // Checks positioned at or past the record end.
        out.push_back(static_cast<char>(pending[next].symbol));
        ++next;
    }
    return out;
}

std::string
InputTransformer::frame(const std::vector<std::string> &records) const
{
    std::string out;
    for (const std::string &record : records) {
        out.push_back(static_cast<char>(0xFF));
        out += transformRecord(record);
    }
    return out;
}

} // namespace rapid::host
