/**
 * @file
 * Host-side report aggregation.
 *
 * The AP delivers raw report events; applications usually want them
 * aggregated — ARM counts *support* (how many transactions matched each
 * candidate item-set), Brill collects rule firings per rule, motif
 * search wants per-motif candidate lists.  ReportSummary groups a
 * report stream by report code and exposes the common queries.
 */
#ifndef RAPID_HOST_REPORTS_H
#define RAPID_HOST_REPORTS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "host/device.h"

namespace rapid::host {

/** Aggregated view of a report stream. */
class ReportSummary {
  public:
    ReportSummary() = default;

    /** Build from a device run's report stream. */
    explicit ReportSummary(const std::vector<HostReport> &reports)
    {
        for (const HostReport &report : reports)
            add(report);
    }

    /** Incorporate one report. */
    void
    add(const HostReport &report)
    {
        _byCode[report.code].push_back(report.offset);
        ++_total;
    }

    /** Total report events seen. */
    size_t total() const { return _total; }

    /** Distinct report codes seen. */
    size_t
    distinctCodes() const
    {
        return _byCode.size();
    }

    /**
     * Support of one code: the number of report events carrying it
     * (for record-per-transaction framings, the number of matching
     * records — ARM's support count).
     */
    size_t
    support(const std::string &code) const
    {
        auto it = _byCode.find(code);
        return it == _byCode.end() ? 0 : it->second.size();
    }

    /** Offsets at which a code reported (in stream order). */
    const std::vector<uint64_t> &
    offsets(const std::string &code) const
    {
        static const std::vector<uint64_t> kEmpty;
        auto it = _byCode.find(code);
        return it == _byCode.end() ? kEmpty : it->second;
    }

    /**
     * Codes with support >= @p min_support, most frequent first —
     * ARM's frequent-item-set query.
     */
    std::vector<std::pair<std::string, size_t>>
    frequent(size_t min_support) const
    {
        std::vector<std::pair<std::string, size_t>> out;
        for (const auto &[code, hits] : _byCode) {
            if (hits.size() >= min_support)
                out.emplace_back(code, hits.size());
        }
        std::sort(out.begin(), out.end(),
                  [](const auto &a, const auto &b) {
                      return a.second != b.second
                                 ? a.second > b.second
                                 : a.first < b.first;
                  });
        return out;
    }

  private:
    std::map<std::string, std::vector<uint64_t>> _byCode;
    size_t _total = 0;
};

} // namespace rapid::host

#endif // RAPID_HOST_REPORTS_H
