/**
 * @file
 * Content-addressed compile cache and offline image building.
 *
 * The cache key is the stable hash of everything that determines the
 * compiled design: the raw source bytes, the raw argument-annotation
 * bytes, the compile options, and the .apimg format version.  Keying
 * on *bytes* (not parse trees) means a warm probe needs no parsing at
 * all — `rapidc run` with a hit goes straight from load_image to
 * configure -> stream.
 *
 * Cache entries are complete .apimg design images (see ap/image.h)
 * stored as `<dir>/<key>.apimg`.  A corrupt or version-mismatched
 * entry is treated as a miss (with a warning) and overwritten by the
 * rebuild — the cache self-heals, it never fails a run.  Stores are
 * write-then-rename, so concurrent rapidc processes sharing a
 * directory at worst both compile; neither observes a torn image.
 */
#ifndef RAPID_HOST_COMPILE_CACHE_H
#define RAPID_HOST_COMPILE_CACHE_H

#include <optional>
#include <string>
#include <string_view>

#include "ap/image.h"
#include "lang/codegen.h"

namespace rapid::host {

/**
 * Derive the content-addressed cache key (32 hex digits) for one
 * compile: raw @p source bytes, raw @p args_text annotation bytes,
 * the semantically relevant @p options, and the image format version.
 */
std::string cacheKey(std::string_view source,
                     std::string_view args_text,
                     const lang::CompileOptions &options);

/**
 * Assemble a complete design image from a compiled program: runs
 * tessellation (when tileable) and placement-and-routing, derives the
 * auto-policy shard map, and records @p source_hash as provenance.
 *
 * Designs the device model cannot place (capacity, or a component
 * exceeding a half-core) yield an image with `placed == false` —
 * still loadable by the scalar and batch engines; the sharded engine
 * re-places on demand.
 */
ap::DesignImage buildImage(const lang::CompiledProgram &compiled,
                           const std::string &source_hash = "");

/** A directory of content-addressed design images. */
class CompileCache {
  public:
    /** @p dir is created lazily on the first store. */
    explicit CompileCache(std::string dir);

    /**
     * The cache directory named by the RAPID_CACHE environment
     * variable, or "" when unset (caching disabled).
     */
    static std::string dirFromEnv();

    /**
     * Probe for @p key.  Increments the `pipeline.cache.hit` /
     * `pipeline.cache.miss` counters (when stats are enabled); a
     * corrupt entry logs a warning and counts as a miss.
     */
    std::optional<ap::DesignImage> load(const std::string &key) const;

    /** Store @p image under @p key (atomic write-then-rename). */
    void store(const std::string &key,
               const ap::DesignImage &image) const;

    /** Absolute entry path for @p key. */
    std::string pathFor(const std::string &key) const;

    const std::string &dir() const { return _dir; }

  private:
    std::string _dir;
};

} // namespace rapid::host

#endif // RAPID_HOST_COMPILE_CACHE_H
