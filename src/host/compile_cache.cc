#include "host/compile_cache.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "ap/sharding.h"
#include "ap/tessellation.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "support/error.h"
#include "support/hash.h"
#include "support/logging.h"

namespace rapid::host {

std::string
cacheKey(std::string_view source, std::string_view args_text,
         const lang::CompileOptions &options)
{
    StableHash hash;
    hash.update(static_cast<uint64_t>(ap::kImageFormatVersion));
    hash.update(source);
    hash.update(args_text);
    // Only options that change the compiled design participate;
    // telemetry and engine selection do not.
    hash.update(static_cast<uint64_t>(
        (options.optimize ? 1 : 0) |
        (options.foldStartWhenever ? 2 : 0) |
        (options.positionalCounters ? 4 : 0) |
        (options.tileOnly ? 8 : 0) |
        (options.counterCheckViaInjection ? 16 : 0)));
    // Optimizer tuning changes the compiled design too.
    hash.update(
        static_cast<uint64_t>(options.optimizer.acrossComponents));
    hash.update(static_cast<uint64_t>(options.optimizer.weldBudget));
    return hash.hex();
}

ap::DesignImage
buildImage(const lang::CompiledProgram &compiled,
           const std::string &source_hash)
{
    ap::DesignImage image;
    image.design = compiled.automaton;
    image.optimizerStats = compiled.optStats;
    image.sourceHash = source_hash;

    if (compiled.tileable()) {
        image.tile = compiled.tile;
        image.tileInstances = compiled.tileInstances;
        try {
            ap::Tessellator tessellator;
            ap::TiledDesign tiled = tessellator.tessellate(
                compiled.tile, compiled.tileInstances);
            image.tilesPerBlock = tiled.tilesPerBlock;
            image.tiledBlocks = tiled.totalBlocks;
        } catch (const CapacityError &error) {
            // One tile exceeds a block: the design is still runnable
            // flat, so record the tile without a tiling.
            logWarn("host", std::string("image: tessellation skipped "
                                        "(") +
                                error.what() + ")");
        }
    }

    try {
        ap::PlacementEngine placer;
        image.placement = placer.place(image.design);
        image.placed = true;
        ap::Sharder sharder;
        image.shardOfComponent =
            sharder.partition(image.design, image.placement)
                .shardOfComponent;
    } catch (const Error &error) {
        // CapacityError (board overflow) or CompileError (a component
        // exceeds a half-core): the image still serves the scalar and
        // batch engines.
        logWarn("host",
                std::string("image: placement skipped (") +
                    error.what() + ")");
    }
    return image;
}

CompileCache::CompileCache(std::string dir) : _dir(std::move(dir))
{
    internalCheck(!_dir.empty(), "CompileCache: empty directory");
}

std::string
CompileCache::dirFromEnv()
{
    const char *value = std::getenv("RAPID_CACHE");
    return value == nullptr ? std::string() : std::string(value);
}

std::string
CompileCache::pathFor(const std::string &key) const
{
    return _dir + "/" + key + ".apimg";
}

std::optional<ap::DesignImage>
CompileCache::load(const std::string &key) const
{
    auto count = [](const char *name) {
        if (obs::statsEnabled())
            obs::MetricsRegistry::instance().counter(name).add(1);
    };
    const std::string path = pathFor(key);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
        count("pipeline.cache.miss");
        return std::nullopt;
    }
    try {
        ap::DesignImage image = ap::loadImageFile(path);
        count("pipeline.cache.hit");
        return image;
    } catch (const Error &error) {
        // Self-heal: a corrupt or stale entry is a miss; the caller
        // recompiles and store() overwrites it.
        logWarn("host", std::string("cache entry rejected: ") +
                            error.what());
        count("pipeline.cache.miss");
        return std::nullopt;
    }
}

void
CompileCache::store(const std::string &key,
                    const ap::DesignImage &image) const
{
    std::error_code ec;
    std::filesystem::create_directories(_dir, ec);
    if (ec) {
        throw Error("cannot create cache directory " + _dir + ": " +
                    ec.message());
    }
    ap::writeImageFile(pathFor(key), image);
}

} // namespace rapid::host
