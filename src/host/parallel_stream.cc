#include "host/parallel_stream.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/timer.h"

namespace rapid::host {

using automata::BatchSimulator;
using automata::ReportEvent;

namespace {

/** Chunks per worker for auto-sized chunks: small enough to balance
 *  uneven chunk costs, large enough to amortize seam replays. */
constexpr size_t kChunksPerWorker = 4;
/** Auto-sized chunks never shrink below this: below it the seam
 *  replay window rivals the chunk itself. */
constexpr size_t kMinAutoChunk = 1u << 14;

unsigned
resolveThreads(unsigned requested)
{
    if (requested != 0)
        return requested;
    const char *env = std::getenv("RAPID_THREADS");
    if (env != nullptr && *env != '\0') {
        char *end = nullptr;
        const unsigned long parsed = std::strtoul(env, &end, 10);
        if (end == nullptr || *end != '\0' || parsed == 0)
            throw Error(std::string("RAPID_THREADS='") + env +
                        "' is not a positive integer");
        return static_cast<unsigned>(
            std::min<unsigned long>(parsed, 1u << 10));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

} // namespace

ParallelStreamExecutor::ParallelStreamExecutor(
    const automata::Automaton &design, Options options)
    : _design(design), _batch(design), _options(options),
      _threads(resolveThreads(options.threads))
{
}

size_t
ParallelStreamExecutor::chunkSizeFor(size_t inputSize) const
{
    if (_options.chunkSize != 0)
        return _options.chunkSize;
    if (_threads <= 1)
        return inputSize;
    const size_t target =
        (inputSize + _threads * kChunksPerWorker - 1) /
        (_threads * kChunksPerWorker);
    return std::max(target, kMinAutoChunk);
}

std::vector<ReportEvent>
ParallelStreamExecutor::run(std::string_view input,
                            obs::ExecutionProfile *profile,
                            RunStats *stats) const
{
    // Profiled runs must observe the exact execution (a speculative
    // chunk would pollute activation counts with states the real run
    // never enters), so they take the instrumented batch path.
    if (profile != nullptr) {
        if (stats)
            *stats = RunStats{.chunks = 1};
        return _batch.run(input, *profile);
    }

    const size_t chunkSize = std::max<size_t>(chunkSizeFor(input.size()), 1);
    const size_t chunks =
        input.empty() ? 1 : (input.size() + chunkSize - 1) / chunkSize;

    if (chunks <= 1) {
        if (stats)
            *stats = RunStats{.chunks = 1};
        BatchSimulator::Cursor cursor = _batch.startCursor();
        _batch.advance(cursor, input);
        return cursor.takeReports();
    }

    const bool record = obs::statsEnabled();
    Timer wall;

    // Phase A: every chunk runs concurrently.  Chunk 0 starts from
    // power-on state (its results are exact); later chunks start from
    // the all-states speculative frontier and record entry snapshots
    // for their first snapshotWindow positions so phase B can find the
    // convergence point.
    struct ChunkWork {
        BatchSimulator::Cursor cursor;
        std::vector<ReportEvent> reports;
        std::vector<BatchSimulator::Frontier> snapshots;
    };
    std::vector<ChunkWork> work(chunks);

    auto process = [&](size_t k) {
        const size_t begin = k * chunkSize;
        const std::string_view chunk =
            input.substr(begin, std::min(chunkSize, input.size() - begin));
        ChunkWork &w = work[k];
        if (k == 0) {
            w.cursor = _batch.startCursor();
            _batch.advance(w.cursor, chunk);
        } else {
            w.cursor = _batch.speculativeCursor(begin);
            const size_t window =
                std::min(_options.snapshotWindow, chunk.size());
            w.snapshots.reserve(window);
            for (size_t i = 0; i < window; ++i) {
                w.snapshots.push_back(_batch.captureFrontier(w.cursor));
                _batch.advanceOne(
                    w.cursor, static_cast<unsigned char>(chunk[i]));
            }
            _batch.advance(w.cursor, chunk.substr(window));
        }
        w.reports = w.cursor.takeReports();
    };

    const unsigned workers = static_cast<unsigned>(
        std::min<size_t>(std::max(_threads, 1u), chunks));
    {
        obs::Span span("parallel_chunks", "device");
        if (workers <= 1) {
            for (size_t k = 0; k < chunks; ++k)
                process(k);
        } else {
            std::atomic<size_t> cursor{0};
            auto worker = [&]() {
                while (true) {
                    const size_t k =
                        cursor.fetch_add(1, std::memory_order_relaxed);
                    if (k >= chunks)
                        return;
                    process(k);
                }
            };
            std::vector<std::thread> pool;
            pool.reserve(workers);
            for (unsigned t = 0; t < workers; ++t)
                pool.emplace_back(worker);
            for (std::thread &thread : pool)
                thread.join();
        }
    }

    // Phase B: sequential seam replay.  `exact` carries the true
    // execution state across seams; each speculative chunk is replayed
    // from it until the replay state equals a recorded snapshot, at
    // which point the speculative tail is exact and splices in as-is.
    obs::Span reconcile_span("parallel_reconcile", "device");
    RunStats local{.chunks = chunks};
    std::vector<ReportEvent> out = std::move(work[0].reports);
    BatchSimulator::Cursor exact = std::move(work[0].cursor);

    for (size_t k = 1; k < chunks; ++k) {
        ChunkWork &w = work[k];
        const size_t begin = k * chunkSize;
        const std::string_view chunk =
            input.substr(begin, std::min(chunkSize, input.size() - begin));

        bool converged = false;
        size_t i = 0;
        for (; i < w.snapshots.size(); ++i) {
            if (_batch.frontierMatches(exact, w.snapshots[i])) {
                converged = true;
                break;
            }
            _batch.advanceOne(exact,
                              static_cast<unsigned char>(chunk[i]));
        }
        local.replayedSymbols += i;

        if (converged) {
            ++local.convergedSeams;
            std::vector<ReportEvent> replayed = exact.takeReports();
            out.insert(out.end(), replayed.begin(), replayed.end());
            out.insert(out.end(),
                       w.reports.begin() + static_cast<ptrdiff_t>(
                                               w.snapshots[i].reportCount),
                       w.reports.end());
            exact = std::move(w.cursor);
        } else {
            // No convergence inside the window (typically a counter
            // whose value depends on the whole prefix): replay the
            // remainder exactly.  Slower, never wrong.
            _batch.advance(exact, chunk.substr(i));
            local.replayedSymbols += chunk.size() - i;
            std::vector<ReportEvent> replayed = exact.takeReports();
            out.insert(out.end(), replayed.begin(), replayed.end());
        }
    }

    if (record) {
        auto &registry = obs::MetricsRegistry::instance();
        registry.counter("sim.parallel.runs").add(1);
        registry.counter("sim.parallel.chunks").add(chunks);
        registry.counter("sim.parallel.converged_seams")
            .add(local.convergedSeams);
        registry.counter("sim.parallel.replayed_symbols")
            .add(local.replayedSymbols);
        registry.counter("sim.parallel.reports").add(out.size());
        registry.gauge("sim.parallel.workers")
            .set(static_cast<double>(workers));
        registry.histogram("sim.parallel.run_ms")
            .record(wall.seconds() * 1e3);
    }
    if (stats)
        *stats = local;
    return out;
}

} // namespace rapid::host
