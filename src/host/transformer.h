/**
 * @file
 * Host-side input-stream transformation.
 *
 * The AP consumes a raw symbol stream; the host driver prepares it
 * (§3.2, §5.3):
 *
 *  - record framing: records are concatenated with the reserved
 *    START_OF_INPUT symbol (0xFF) preceding each record, which the
 *    compiled program's implicit sliding window keys on;
 *  - reserved-symbol injection: when the compiler lowered counter
 *    checks through the §5.3 scheme, the corresponding reserved symbol
 *    is inserted after a fixed number of data symbols in every record
 *    (the compiler-inferred period), or at caller-specified positions
 *    when the compiler could not infer one.
 */
#ifndef RAPID_HOST_TRANSFORMER_H
#define RAPID_HOST_TRANSFORMER_H

#include <cstdint>
#include <string>
#include <vector>

#include "lang/codegen.h"

namespace rapid::host {

/** Builds device input streams from host-side records. */
class InputTransformer {
  public:
    InputTransformer() = default;

    /** Use the injection plan recorded by the compiler. */
    explicit InputTransformer(
        const std::vector<lang::SymbolInjection> &injections)
        : _injections(injections)
    {
    }

    /**
     * Supply the insertion period for an injection the compiler could
     * not infer (its recorded period is 0) — the §5.3 "rely on the
     * developer to provide the pattern" escape hatch.
     */
    void setPeriod(const std::string &counter_name, uint64_t period);

    /**
     * Frame @p records into one device stream: each record is preceded
     * by START_OF_INPUT and carries its reserved-symbol insertions.
     *
     * @throws rapid::CompileError if an injection still has no period.
     */
    std::string frame(const std::vector<std::string> &records) const;

    /** Transform a single record (no leading separator). */
    std::string transformRecord(const std::string &record) const;

  private:
    std::vector<lang::SymbolInjection> _injections;
};

} // namespace rapid::host

#endif // RAPID_HOST_TRANSFORMER_H
