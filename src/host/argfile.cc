#include "host/argfile.h"

#include <fstream>
#include <sstream>

#include "support/error.h"
#include "support/strings.h"

namespace rapid::host {

using lang::Value;

namespace {

[[noreturn]] void
fail(size_t line, const std::string &msg)
{
    throw CompileError("argument file line " + std::to_string(line) +
                       ": " + msg);
}

std::string
unescape(std::string_view text, size_t line)
{
    std::string out;
    for (size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '\\') {
            out.push_back(text[i]);
            continue;
        }
        if (i + 1 >= text.size())
            fail(line, "dangling escape");
        char c = text[++i];
        switch (c) {
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case ',':
            out.push_back(',');
            break;
          case ';':
            out.push_back(';');
            break;
          case 'x': {
            if (i + 2 >= text.size())
                fail(line, "truncated \\x escape");
            auto hex = [&](char h) -> int {
                if (h >= '0' && h <= '9')
                    return h - '0';
                if (h >= 'a' && h <= 'f')
                    return h - 'a' + 10;
                if (h >= 'A' && h <= 'F')
                    return h - 'A' + 10;
                fail(line, "bad hex digit");
            };
            int hi = hex(text[i + 1]);
            int lo = hex(text[i + 2]);
            i += 2;
            out.push_back(static_cast<char>(hi * 16 + lo));
            break;
          }
          default:
            fail(line, std::string("unknown escape '\\") + c + "'");
        }
    }
    return out;
}

int64_t
parseInt(std::string_view text, size_t line)
{
    try {
        size_t used = 0;
        std::string spelled(trim(text));
        int64_t value = std::stoll(spelled, &used);
        if (used != spelled.size())
            fail(line, "malformed integer '" + spelled + "'");
        return value;
    } catch (const std::logic_error &) {
        fail(line, "malformed integer '" + std::string(trim(text)) +
                       "'");
    }
}

/** Split on @p sep, honouring backslash escapes (\\, stays literal). */
std::vector<std::string>
splitEscaped(std::string_view text, char sep)
{
    std::vector<std::string> out;
    std::string current;
    for (size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (c == '\\' && i + 1 < text.size()) {
            current.push_back(c);
            current.push_back(text[++i]);
            continue;
        }
        if (c == sep) {
            out.push_back(std::move(current));
            current.clear();
            continue;
        }
        current.push_back(c);
    }
    out.push_back(std::move(current));
    return out;
}

std::vector<std::string>
splitTrimmed(std::string_view text, char sep, size_t line)
{
    std::vector<std::string> out;
    for (const std::string &field : splitEscaped(text, sep))
        out.push_back(unescape(trim(field), line));
    // A single empty field means an empty list.
    if (out.size() == 1 && out[0].empty())
        out.clear();
    return out;
}

} // namespace

std::vector<Value>
parseArgFile(const std::string &text)
{
    std::vector<Value> args;
    size_t line_number = 0;
    for (const std::string &raw : split(text, '\n')) {
        ++line_number;
        std::string_view line = trim(raw);
        if (line.empty() || line.front() == '#')
            continue;
        size_t colon = line.find(':');
        if (colon == std::string_view::npos)
            fail(line_number, "expected 'type: value'");
        std::string kind(trim(line.substr(0, colon)));
        std::string_view payload = trim(line.substr(colon + 1));

        if (kind == "int") {
            args.push_back(Value::integer(parseInt(payload,
                                                   line_number)));
        } else if (kind == "bool") {
            if (payload == "true")
                args.push_back(Value::boolean(true));
            else if (payload == "false")
                args.push_back(Value::boolean(false));
            else
                fail(line_number, "expected true or false");
        } else if (kind == "char") {
            std::string decoded = unescape(payload, line_number);
            if (decoded.size() != 1)
                fail(line_number, "expected a single character");
            args.push_back(Value::character(decoded[0]));
        } else if (kind == "string") {
            args.push_back(Value::str(unescape(payload, line_number)));
        } else if (kind == "ints") {
            std::vector<int64_t> items;
            for (const std::string &field :
                 splitTrimmed(payload, ',', line_number)) {
                items.push_back(parseInt(field, line_number));
            }
            args.push_back(Value::intArray(items));
        } else if (kind == "strings") {
            args.push_back(Value::strArray(
                splitTrimmed(payload, ',', line_number)));
        } else if (kind == "stringss") {
            lang::ValueList rows;
            for (const std::string &row : splitEscaped(payload, ';')) {
                rows.push_back(Value::strArray(
                    splitTrimmed(trim(row), ',', line_number)));
            }
            args.push_back(Value::array(
                lang::Type(lang::BaseType::String, 1),
                std::move(rows)));
        } else {
            fail(line_number, "unknown argument kind '" + kind + "'");
        }
    }
    return args;
}

std::vector<Value>
loadArgFile(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        throw CompileError("cannot open argument file: " + path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return parseArgFile(buffer.str());
}

} // namespace rapid::host
