/**
 * @file
 * Host driver: the runtime side of the paper's generated "driver code".
 *
 * The driver loads a configured design (a flat automaton or a
 * tessellated block image), streams symbols through the device (here:
 * the functional simulator), and collects report events enriched with
 * the reporting element's identity and RAPID-level report code (§3.1
 * "the offset ... and additional identifying meta data, such as the
 * reporting macro").
 */
#ifndef RAPID_HOST_DEVICE_H
#define RAPID_HOST_DEVICE_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ap/tessellation.h"
#include "automata/automaton.h"
#include "automata/simulator.h"

namespace rapid::host {

/** A report event as delivered to the host application. */
struct HostReport {
    /** 0-based offset in the streamed input. */
    uint64_t offset = 0;
    /** ANML id of the reporting element. */
    std::string element;
    /** RAPID report code (e.g. "hamming_distance#3"). */
    std::string code;
};

/** A loaded device ready to process streams. */
class Device {
  public:
    /** Load a flat design. */
    explicit Device(automata::Automaton design);

    /**
     * Load a tessellated design: the block image is replicated
     * `ceil(instances / tilesPerBlock)` times — block-level
     * configuration (§6) — before execution.
     */
    explicit Device(const ap::TiledDesign &tiled);

    /** Stream @p input from power-on state; returns all reports. */
    std::vector<HostReport> run(std::string_view input);

    /** The loaded (possibly replicated) design. */
    const automata::Automaton &design() const { return _design; }

  private:
    automata::Automaton _design;
    std::unique_ptr<automata::Simulator> _simulator;
};

} // namespace rapid::host

#endif // RAPID_HOST_DEVICE_H
