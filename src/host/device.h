/**
 * @file
 * Host driver: the runtime side of the paper's generated "driver code".
 *
 * The driver loads a configured design (a flat automaton or a
 * tessellated block image), streams symbols through the device (here:
 * a functional simulator), and collects report events enriched with
 * the reporting element's identity and RAPID-level report code (§3.1
 * "the offset ... and additional identifying meta data, such as the
 * reporting macro").
 *
 * Three execution engines back the device:
 *
 *  - Engine::Scalar — the lock-step reference Simulator (sparse
 *    element lists, one stream at a time);
 *  - Engine::Batch — the bit-parallel BatchSimulator (word-wide STE
 *    lanes, compiled successor tables), which additionally executes
 *    many independent streams concurrently via runBatch();
 *  - Engine::Sharded — the multi-chip topology: the design is placed,
 *    partitioned into per-half-core (or explicitly sized) shards of
 *    whole connected components, and each shard runs on its own
 *    BatchSimulator over a worker pool, every shard seeing the full
 *    broadcast symbol stream (see host/sharded.h);
 *  - Engine::Parallel — single-stream data parallelism: one input is
 *    chunked across a worker pool of speculative BatchSimulator
 *    cursors and made exact by seam-replay reconciliation (see
 *    host/parallel_stream.h).
 *
 * All engines produce the same *canonical* report stream — sorted by
 * (offset, element id) — so `rapidc run` output is byte-identical
 * across engines; the conformance suite and the differential fuzzing
 * oracle enforce this continuously.
 */
#ifndef RAPID_HOST_DEVICE_H
#define RAPID_HOST_DEVICE_H

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "ap/image.h"
#include "ap/tessellation.h"
#include "automata/automaton.h"
#include "automata/batch_simulator.h"
#include "automata/simulator.h"
#include "host/parallel_stream.h"
#include "host/sharded.h"
#include "obs/profile.h"

namespace rapid::host {

/** A report event as delivered to the host application. */
struct HostReport {
    /** 0-based offset in the streamed input. */
    uint64_t offset = 0;
    /** ANML id of the reporting element. */
    std::string element;
    /** RAPID report code (e.g. "hamming_distance#3"). */
    std::string code;
};

/** Which execution engine a Device streams symbols through. */
enum class Engine {
    Scalar,
    Batch,
    Sharded,
    Parallel,
};

/**
 * Parse "scalar" / "batch" / "sharded" / "parallel";
 * @throws rapid::Error otherwise.
 */
Engine parseEngine(const std::string &name);

/** Human-readable engine name. */
const char *engineName(Engine engine);

/**
 * Engine selected by the RAPID_ENGINE environment variable, or
 * @p fallback when unset/empty.  Lets engine-agnostic hosts (the
 * bundled examples, conformance drivers) be steered externally.
 * @throws rapid::Error on an unknown value.
 */
Engine engineFromEnv(Engine fallback = Engine::Scalar);

/** A loaded device ready to process streams. */
class Device {
  public:
    /**
     * Load a flat design.
     *
     * @p shards applies to Engine::Sharded only: 0 derives the shard
     * count from placement (one shard per occupied half-core), N
     * forces min(N, connected components) balanced shards.
     *
     * @p threads applies to Engine::Parallel only: its worker count
     * (0 resolves RAPID_THREADS, then hardware concurrency).
     */
    explicit Device(automata::Automaton design,
                    Engine engine = Engine::Scalar,
                    unsigned shards = 0, unsigned threads = 0);

    /**
     * Load a tessellated design: the block image is replicated
     * `ceil(instances / tilesPerBlock)` times — block-level
     * configuration (§6) — before execution.
     */
    explicit Device(const ap::TiledDesign &tiled,
                    Engine engine = Engine::Scalar,
                    unsigned shards = 0, unsigned threads = 0);

    /**
     * Load a precompiled design image (.apimg): the compile-once,
     * run-many path.  No parsing, optimization, or tessellation
     * happens here, and when the image carries a placement the
     * sharded engine reuses it instead of re-placing — construction
     * is pure configure.
     */
    explicit Device(const ap::DesignImage &image,
                    Engine engine = Engine::Scalar,
                    unsigned shards = 0, unsigned threads = 0);

    /**
     * Stream @p input from power-on state; returns all reports in
     * canonical order (ascending offset, then element id) — identical
     * across engines.
     */
    std::vector<HostReport> run(std::string_view input);

    /**
     * Stream N independent inputs, each from power-on state; result i
     * corresponds to inputs[i] (deterministic ordering).
     *
     * On the batch engine the streams execute concurrently over a
     * small thread pool (@p threads: 0 = hardware concurrency); the
     * scalar engine runs them sequentially.
     */
    std::vector<std::vector<HostReport>>
    runBatch(const std::vector<std::string> &inputs,
             unsigned threads = 0);

    /** The loaded (possibly replicated) design. */
    const automata::Automaton &design() const { return _design; }

    /** The engine selected at load time. */
    Engine engine() const { return _engine; }

    /** Shards the sharded engine executes (0 for other engines). */
    size_t shardCount() const
    {
        return _sharded ? _sharded->shardCount() : 0;
    }

    /**
     * Force execution profiling on (or off) regardless of the global
     * obs::statsEnabled() switch.  Profiling is otherwise active
     * exactly when stats are enabled at run()/runBatch() time.
     */
    void setProfiling(bool on) { _forceProfiling = on; }

    /**
     * Accumulated execution profile over every profiled run() /
     * runBatch() on this device: total cycles, activations, reports,
     * the per-element activation heatmap, and bucketed activity /
     * report-rate series.  Empty when no profiled run has happened.
     * Both engines populate it identically (total activation and
     * report counts match between Engine::Scalar and Engine::Batch for
     * the same inputs).
     */
    const obs::ExecutionProfile &stats() const { return _profile; }

    /**
     * SIMD match-kernel tier this device executes with ("avx2",
     * "sse2", "baseline" for the batch engines; "none" for the scalar
     * interpreter, which has no vectorized hot loop).
     */
    const char *kernelName() const;

    /**
     * Mirror the *in-flight* run's profile deltas into the metrics
     * registry so a concurrent /metrics scrape sees live sim.*
     * counters instead of zeros until the stream ends.  recordRun()
     * subtracts whatever was published here, so end-of-run totals are
     * exact; no-op when no profiled run is streaming or stats are off.
     *
     * Reads the engine's in-flight counters without synchronization —
     * a scrape may observe a value a few increments stale, which is
     * the accepted contract for monitoring reads.
     */
    void publishLive();

  private:
    /** Build the selected engine (the "configure" phase). */
    void configure(const ap::PlacementResult *placement,
                   unsigned shards, unsigned threads);

    /** Canonically order (offset, element) and attach identities. */
    std::vector<HostReport>
    enrich(std::vector<automata::ReportEvent> events) const;

    bool profilingActive() const;
    /** Merge a run's profile and mirror totals into the registry. */
    void recordRun(const obs::ExecutionProfile &delta);

    automata::Automaton _design;
    Engine _engine = Engine::Scalar;
    std::unique_ptr<automata::Simulator> _simulator;
    std::unique_ptr<automata::BatchSimulator> _batch;
    std::unique_ptr<ShardedExecutor> _sharded;
    std::unique_ptr<ParallelStreamExecutor> _parallel;
    bool _forceProfiling = false;
    obs::ExecutionProfile _profile;

    /** The profile the current run() is filling (null when idle). */
    std::atomic<const obs::ExecutionProfile *> _live{nullptr};
    /** Serializes publishLive() vs recordRun() settlement. */
    std::mutex _publishMutex;
    /** Live deltas already mirrored into the registry this run. */
    uint64_t _publishedCycles = 0;
    uint64_t _publishedActivations = 0;
    uint64_t _publishedReports = 0;
};

} // namespace rapid::host

#endif // RAPID_HOST_DEVICE_H
