/**
 * @file
 * Bit-parallel, multi-stream execution engine for homogeneous-NFA
 * designs.
 *
 * The lock-step Simulator walks sparse element lists one symbol at a
 * time — faithful, but far from the streaming throughput that is the
 * AP's whole value proposition.  BatchSimulator is the
 * throughput-oriented twin: construction *compiles* the Automaton into
 * flat, cache-friendly tables and step() becomes a handful of
 * word-wide operations over `uint64_t` lanes:
 *
 *  - every STE owns one bit lane; a 256-entry symbol table maps each
 *    input byte to the bitvector of STE lanes whose character class
 *    contains it, so phase 1 is `active = enabled & table[symbol]`;
 *  - enable/active sets are dense bitsets; activation fan-out is
 *    pre-aggregated per source element into CSR rows of
 *    (word index, OR-mask) pairs, so phase 4 is a few ORs per active
 *    element instead of an edge-list walk;
 *  - the (typically small) combinational network of counters and
 *    gates is flattened into topologically ordered evaluation records
 *    with CSR input lists.
 *
 * The word-wide primitives (match-table AND, successor-union OR) run
 * through the runtime-dispatched kernel layer in match_kernels.h —
 * portable baseline, SSE2, or AVX2, selected per construction via
 * cpuid or the RAPID_KERNEL environment variable.  STE-only designs
 * additionally compile a rare-byte literal prefilter: when the
 * frontier collapses to the always-enabled set, input bytes that
 * cannot activate any always-enabled lane are skipped without touching
 * the automaton at all (cold regions cost one table lookup per byte).
 *
 * All per-stream state lives in a StreamState value, so one compiled
 * BatchSimulator can execute many independent input streams
 * concurrently: runBatch() fans N streams over a small thread pool
 * and returns N report vectors in submission order (deterministic —
 * stream i's result never depends on how work was scheduled).
 *
 * Chunked single-stream execution (host/parallel_stream.h) uses the
 * resumable Cursor API: startCursor()/speculativeCursor() seed a
 * stream state at an arbitrary offset, advance() consumes symbols
 * through the fast paths, and captureFrontier()/frontierMatches()
 * support the seam-replay reconciliation that makes speculative
 * chunk execution exact.
 *
 * Semantics are identical to Simulator (same phase structure, same
 * counter reset priority and rising-edge reporting); the differential
 * fuzzing oracle keeps the scalar engine as the reference and
 * cross-checks this one as its own fork.  Within one cycle, events are
 * ordered by element id (the scalar engine orders by activation
 * discovery); comparisons should sort, as ReportEvent::operator< does.
 */
#ifndef RAPID_AUTOMATA_BATCH_SIMULATOR_H
#define RAPID_AUTOMATA_BATCH_SIMULATOR_H

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "automata/automaton.h"
#include "automata/match_kernels.h"
#include "automata/simulator.h"
#include "obs/profile.h"

namespace rapid::automata {

/** Compiled bit-parallel engine; one instance serves many streams. */
class BatchSimulator {
  public:
    /** Per-counter sequential state (public for Frontier snapshots). */
    struct CounterState {
        uint32_t value = 0;
        bool latched = false;
        /** Output signal on the previous cycle (edge detection). */
        bool prevOut = false;

        friend bool
        operator==(const CounterState &a, const CounterState &b)
        {
            return a.value == b.value && a.latched == b.latched &&
                   a.prevOut == b.prevOut;
        }
    };

    /** All mutable execution state for one input stream. */
    struct StreamState {
        std::vector<uint64_t> enabled;
        std::vector<uint64_t> active;
        std::vector<uint64_t> next;
        std::vector<uint8_t> combSignal;
        std::vector<CounterState> counters;
        std::vector<ReportEvent> reports;
        uint64_t cycle = 0;
    };

    /**
     * Resumable per-stream execution handle for chunked execution.
     * Obtain one from startCursor()/speculativeCursor(), feed it with
     * advance()/advanceOne(), and drain accumulated reports (global
     * offsets) with takeReports().  Cursors are value types: copying
     * one forks the execution state.
     */
    class Cursor {
      public:
        /** Stream offset of the next symbol this cursor consumes. */
        uint64_t offset() const { return _state.cycle; }

        /** Reports accumulated since the last takeReports(). */
        const std::vector<ReportEvent> &reports() const
        {
            return _state.reports;
        }

        /** Move the accumulated reports out, leaving none behind. */
        std::vector<ReportEvent> takeReports()
        {
            std::vector<ReportEvent> out = std::move(_state.reports);
            _state.reports.clear();
            return out;
        }

      private:
        friend class BatchSimulator;
        StreamState _state;
    };

    /**
     * Compact execution snapshot: the enable frontier plus all
     * sequential state (counters, gate signals), but no report
     * history — just the report count at capture time, so a seam
     * replay can splice speculative report tails.
     */
    struct Frontier {
        std::vector<uint64_t> enabled;
        std::vector<uint8_t> combSignal;
        std::vector<CounterState> counters;
        /** cursor.reports().size() when the snapshot was taken. */
        size_t reportCount = 0;
    };

    /** @throws CompileError when the design fails validation. */
    explicit BatchSimulator(const Automaton &automaton);

    /** The engine borrows the design; temporaries would dangle. */
    explicit BatchSimulator(Automaton &&) = delete;

    /**
     * Execute one stream from power-on state.
     *
     * Thread-safe: all mutable state is stack-local, so concurrent
     * run() calls on one BatchSimulator are safe.
     */
    std::vector<ReportEvent> run(std::string_view input) const;

    /**
     * Execute one stream with execution profiling: @p profile gains
     * the stream's per-cycle activity, element heatmap, and report
     * series.  Profiled runs take the instrumented step loop (the
     * register-resident fast path stays reserved for un-profiled
     * runs), so expect roughly scalar-engine throughput.  Pass a fresh
     * profile per run and combine with ExecutionProfile::merge().
     */
    std::vector<ReportEvent> run(std::string_view input,
                                 obs::ExecutionProfile &profile) const;

    /**
     * Execute many independent streams, each from power-on state.
     *
     * Result i is exactly run(inputs[i]); ordering is deterministic
     * regardless of scheduling.  @p threads caps the worker count
     * (0 = std::thread::hardware_concurrency(), clamped to the
     * number of streams; 1 executes inline).
     *
     * When @p profile is non-null every stream is profiled and the
     * overlaid union (aligned at per-stream offset 0) is merged into
     * it.  Independently, when obs::statsEnabled() the pool records
     * per-worker utilization into the metrics registry
     * (batch.workers, batch.worker_busy_ms, batch.utilization,
     * batch.streams).
     */
    std::vector<std::vector<ReportEvent>>
    runBatch(const std::vector<std::string_view> &inputs,
             unsigned threads = 0,
             obs::ExecutionProfile *profile = nullptr) const;

    /**
     * Power-on cursor at offset 0: the exact state run() starts from
     * (always-enabled plus start-of-data lanes, counters at zero).
     */
    Cursor startCursor() const;

    /**
     * All-states speculative cursor at @p offset: every STE lane
     * enabled, counters and gate signals at zero.  For STE-only
     * designs the enable-set transition is monotone, so this frontier
     * over-approximates any reachable one and typically converges to
     * the exact execution within a pattern length; reports emitted
     * before convergence are speculative and must be reconciled by
     * seam replay (host/parallel_stream.cc).
     */
    Cursor speculativeCursor(uint64_t offset) const;

    /** Consume @p chunk through the fastest applicable path. */
    void advance(Cursor &cursor, std::string_view chunk) const;

    /** Consume exactly one symbol (the seam-replay step loop). */
    void advanceOne(Cursor &cursor, unsigned char symbol) const;

    /** Snapshot @p cursor's frontier + sequential state. */
    Frontier captureFrontier(const Cursor &cursor) const;

    /**
     * Does @p cursor's execution state equal @p frontier?  True means
     * the two executions are in identical states: every future symbol
     * produces identical behaviour, so a replay may stop here.
     */
    bool frontierMatches(const Cursor &cursor,
                         const Frontier &frontier) const;

    /** Number of 64-bit words per STE bitset row (for tests). */
    size_t words() const { return _words; }

    /** Number of STE bit lanes (for tests). */
    size_t lanes() const { return _numStes; }

    /** Name of the SIMD kernel variant compiled in ("avx2", ...). */
    const char *kernel() const { return _ops->name; }

    /** Whether the rare-byte literal prefilter is active (for tests). */
    bool prefilterEnabled() const { return _prefilter; }

  private:
    /** One flattened combinational node (gate or counter). */
    struct CombNode {
        ElementId element = kNoElement;
        ElementKind kind = ElementKind::Gate;
        GateOp op = GateOp::And;
        uint32_t target = 1;
        CounterMode mode = CounterMode::Latch;
        bool report = false;
        /** Range into _combInputs. */
        uint32_t inBegin = 0;
        uint32_t inEnd = 0;
        /** Range into _succWord/_succMask (activation fan-out). */
        uint32_t succBegin = 0;
        uint32_t succEnd = 0;
        /** Dense per-stream counter state slot (counters only). */
        uint32_t counterSlot = 0;
    };

    /** One fan-in operand of a combinational node. */
    struct CombInput {
        /** STE lane when steSource, else comb-node position. */
        uint32_t src = 0;
        uint8_t steSource = 0;
        Port port = Port::Activate;
    };

    void resetStream(StreamState &state) const;
    void stepStream(StreamState &state, unsigned char symbol) const;
    /** Consume @p input through the fastest applicable path. */
    void advanceState(StreamState &state, std::string_view input) const;
    void runInto(StreamState &state, std::string_view input,
                 obs::ExecutionProfile *profile) const;
    void runSingleWordSteOnly(StreamState &state,
                              std::string_view input) const;
    void runMultiWordSteOnly(StreamState &state,
                             std::string_view input) const;
    /** Fold one just-executed cycle's activity into @p profile. */
    void profileCycle(const StreamState &state, uint64_t reported,
                      obs::ExecutionProfile &profile) const;

    const Automaton &_automaton;

    size_t _numStes = 0;
    /** 64-bit words per STE bitset. */
    size_t _words = 0;

    /** lane -> ElementId, for report events. */
    std::vector<ElementId> _steElement;
    /** 256 rows x _words: lanes matching each symbol. */
    std::vector<uint64_t> _matchTable;
    /** Lanes enabled every cycle / only at offset 0 / reporting. */
    std::vector<uint64_t> _alwaysMask;
    std::vector<uint64_t> _startMask;
    std::vector<uint64_t> _reportMask;

    /**
     * Activation fan-out in CSR form, shared by STE lanes and comb
     * nodes: _succOffset[lane] ranges index (word, mask) pairs; comb
     * nodes carry their own ranges in CombNode.
     */
    std::vector<uint32_t> _succOffset;
    std::vector<uint32_t> _succWord;
    std::vector<uint64_t> _succMask;

    /**
     * Byte-indexed successor union tables: for lane slot b (lanes
     * 8b..8b+7) and byte value v, row [b][v] is the _words-wide OR of
     * the successor rows of every lane whose bit is set in v.  Phase 4
     * then needs at most 8·_words table ORs per cycle — no per-bit
     * scan.  Quadratic in _words (16 KiB · _words²), so only built for
     * designs up to kByteTableMaxWords words; larger designs fall back
     * to the per-bit CSR walk.
     */
    static constexpr size_t kByteTableMaxWords = 8;
    std::vector<uint64_t> _succByte;
    bool _byteTables = false;

    /** Selected SIMD kernel variant (see match_kernels.h). */
    const kernels::Ops *_ops = nullptr;

    /**
     * Rare-byte literal prefilter (STE-only designs): hot[c] is
     * nonzero iff byte c can activate an always-enabled lane.  When
     * the frontier equals the always-enabled set, cold bytes cannot
     * activate anything, report anything, or change the frontier, so
     * the scan loop skips them without stepping the automaton.
     */
    std::array<uint8_t, 256> _hotByte{};
    bool _prefilter = false;

    /** Flattened combinational network in evaluation order. */
    std::vector<CombNode> _comb;
    std::vector<CombInput> _combInputs;
    size_t _numCounters = 0;
};

} // namespace rapid::automata

#endif // RAPID_AUTOMATA_BATCH_SIMULATOR_H
