/**
 * @file
 * Automaton optimization passes.
 *
 * These run between code generation and placement.  They matter for the
 * paper's Table 4 "Device STEs" comparison: the AP SDK's compiler also
 * rewrites designs to better match the hardware, and RAPID leans on such
 * rewrites to compete with hand-tuned ANML.
 *
 *  - fuseParallelStes: merge sibling STEs that are behaviourally a
 *    single STE with a wider character class (the Fig. 7 OR special
 *    case, applied globally).
 *  - mergeCommonPrefixes: trie-style sharing of identical chain heads,
 *    the dominant saving for multi-pattern designs.
 *  - removeDeadElements: drop elements unreachable from any start STE
 *    (exposed on Automaton, re-exported here for pipeline use).
 */
#ifndef RAPID_AUTOMATA_OPTIMIZER_H
#define RAPID_AUTOMATA_OPTIMIZER_H

#include <cstddef>

#include "automata/automaton.h"

namespace rapid::automata {

/** Optimizer configuration. */
struct OptimizeOptions {
    /**
     * Allow rewrites that merge STEs of *different* connected
     * components (trie-style sharing across separate automata, as the
     * AP SDK's global design rewriting does).  Off by default: merged
     * components place as one unit, which defeats per-instance
     * tessellation and can exceed the half-core limit for
     * board-scale designs — the paper's ARM baseline "not able to
     * support placement and routing" failure mode.
     */
    bool acrossComponents = false;
};

/** Per-pass and total rewrite counts from optimize(). */
struct OptimizeStats {
    size_t fusedParallel = 0;
    size_t mergedPrefixes = 0;
    size_t removedDead = 0;

    size_t
    total() const
    {
        return fusedParallel + mergedPrefixes + removedDead;
    }
};

/**
 * Merge STE siblings with identical fan-in, fan-out, start, and report
 * configuration by unioning their character classes.
 *
 * @return number of STEs eliminated.
 */
size_t fuseParallelStes(Automaton &automaton,
                        const OptimizeOptions &options = {});

/**
 * Merge STEs with identical character class, start kind, and fan-in
 * whose behaviour differs only in fan-out (classic prefix sharing).
 * Reporting STEs are only merged with identically-reporting ones.
 *
 * @return number of STEs eliminated.
 */
size_t mergeCommonPrefixes(Automaton &automaton,
                           const OptimizeOptions &options = {});

/** Run all passes to a fixed point (bounded); returns rewrite counts. */
OptimizeStats optimize(Automaton &automaton,
                       const OptimizeOptions &options = {});

} // namespace rapid::automata

#endif // RAPID_AUTOMATA_OPTIMIZER_H
