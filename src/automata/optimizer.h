/**
 * @file
 * Automaton optimization passes.
 *
 * These run between code generation and placement.  They matter for the
 * paper's Table 4 "Device STEs" comparison: the AP SDK's compiler also
 * rewrites designs to better match the hardware, and RAPID leans on such
 * rewrites to compete with hand-tuned ANML.
 *
 * The pipeline is a bounded fixed point over five reduction passes,
 * ordered each round by a small cost model (fan-in/out degree, charset
 * popcount, depth — the heuristic features of the graph-simplification
 * literature):
 *
 *  - mergeCommonPrefixes: forward hash-cons sweep — STEs with equal
 *    character class, start kind, and *resolved* predecessor set merge,
 *    iteratively, so whole duplicate chain heads collapse (trie-style
 *    sharing, the dominant saving for multi-pattern designs).
 *  - mergeCommonSuffixes: the mirrored backward sweep toward report
 *    elements — equal class, start kind, and resolved successor set.
 *  - fuseParallelStes: sibling STEs with identical resolved fan-in and
 *    fan-out become a single STE with the union character class (the
 *    Fig. 7 OR special case, applied globally).
 *  - absorbOrGates: an OR gate whose operands are sibling STEs with a
 *    common predecessor set is replaced by one union-class STE,
 *    dropping the boolean element (and any operand the gate was the
 *    only consumer of).
 *  - removeDeadPaths: elements that can never activate, and elements
 *    whose activity can never reach a reporting element, are deleted —
 *    conservatively keeping constant-inactive operands of surviving
 *    inverting gates (NOT/NAND/NOR fire on silence).
 *
 * All rewrites preserve the report stream: reporting elements are only
 * ever merged with exact duplicates (equal class, code, and resolved
 * predecessors — i.e. elements that activate on identical cycles), and
 * no rewrite changes the cycles on which any surviving reporter fires.
 */
#ifndef RAPID_AUTOMATA_OPTIMIZER_H
#define RAPID_AUTOMATA_OPTIMIZER_H

#include <cstddef>

#include "automata/automaton.h"

namespace rapid::automata {

/** Optimizer configuration. */
struct OptimizeOptions {
    /**
     * Allow rewrites that merge STEs of *different* connected
     * components with no size bound (trie-style sharing across
     * separate automata, as the AP SDK's global design rewriting
     * does).  Welded components place as one unit, which can exceed
     * the half-core limit for board-scale designs — the paper's ARM
     * baseline "not able to support placement and routing" failure
     * mode — so unbounded welding is opt-in.
     */
    bool acrossComponents = false;

    /**
     * Bounded cross-component welding: merge elements of different
     * components only while the combined *live* component size stays
     * within this many elements (default: one block's STE capacity,
     * so a welded group still places into a single block).  The
     * budget tracks post-merge sizes, so a weld blocked early can
     * succeed on a later round once merging has shrunk the parts.
     * 0 disables cross-component rewrites entirely (strict per-
     * component isolation).  Ignored when acrossComponents is set.
     */
    size_t weldBudget = 256;
};

/** Per-pass and total rewrite counts from optimize(). */
struct OptimizeStats {
    size_t fusedParallel = 0;
    size_t mergedPrefixes = 0;
    size_t mergedSuffixes = 0;
    size_t absorbedGates = 0;
    size_t removedDead = 0;
    /** Cross-component merges accepted under the weld budget. */
    size_t weldedComponents = 0;
    /** Fixed-point rounds optimize() ran. */
    size_t rounds = 0;

    size_t
    total() const
    {
        return fusedParallel + mergedPrefixes + mergedSuffixes +
               absorbedGates + removedDead;
    }
};

/**
 * Merge sibling STEs with identical resolved fan-in and fan-out,
 * start kind, and no reporting role by unioning their character
 * classes.  Excludes self-looping STEs and STEs feeding AND/NAND
 * gates (where distinct operand signals are load-bearing).
 *
 * @return number of STEs eliminated.
 */
size_t fuseParallelStes(Automaton &automaton,
                        const OptimizeOptions &options = {});

/**
 * Merge STEs with identical character class, start kind, and
 * *resolved* predecessor set — a forward hash-cons sweep in depth
 * order, so duplicate chains collapse in one pass.  Reporting STEs
 * merge only with exact duplicates (same flag and code); such twins
 * activate on identical cycles, so the report stream is preserved.
 *
 * @return number of STEs eliminated.
 */
size_t mergeCommonPrefixes(Automaton &automaton,
                           const OptimizeOptions &options = {});

/**
 * Mirror of mergeCommonPrefixes toward report elements: merge
 * non-reporting STEs with identical character class, start kind, and
 * resolved successor set (ports included), sweeping backward from the
 * reporters.  Excludes STEs feeding AND/NAND gates.
 *
 * @return number of STEs eliminated.
 */
size_t mergeCommonSuffixes(Automaton &automaton,
                           const OptimizeOptions &options = {});

/**
 * Replace OR gates over sibling STEs (identical resolved predecessor
 * sets and start kinds) with a single union-class STE driving the
 * gate's outputs.  Operands whose only output was the gate are
 * dropped with it.
 *
 * @return number of gates absorbed.
 */
size_t absorbOrGates(Automaton &automaton,
                     const OptimizeOptions &options = {});

/**
 * Delete elements that can never activate (no path of possible
 * activations from a start STE) and elements whose activity cannot
 * reach any reporting element.  Never-active operands of surviving
 * NOT/NAND/NOR gates are kept: those gates output high on silent
 * inputs, so removing the operand would change behaviour.  The
 * cannot-reach-report direction is skipped for designs with no
 * reporting elements at all.
 *
 * @return number of elements removed.
 */
size_t removeDeadPaths(Automaton &automaton);

/** Run all passes to a fixed point (bounded); returns rewrite counts. */
OptimizeStats optimize(Automaton &automaton,
                       const OptimizeOptions &options = {});

} // namespace rapid::automata

#endif // RAPID_AUTOMATA_OPTIMIZER_H
