#include "automata/positional.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "support/error.h"
#include "support/strings.h"

namespace rapid::automata {

namespace {

/** Analysis of one expandable counter. */
struct CounterPlan {
    ElementId counter = kNoElement;
    uint32_t target = 0;
    /** STEs driving the count port. */
    std::set<ElementId> countSources;
    /** Elements deleted by the expansion (counter, gates, guards' reset
     * edges are dropped implicitly). */
    std::set<ElementId> removed;
    /** Activate consumers of the counter (STEs). */
    std::vector<ElementId> directTargets;
    bool counterReports = false;
    std::string counterReportCode;
    /**
     * Inverted-check consumers: for each AND gate fed by the counter's
     * inverter — its control STEs, its STE targets, and its report
     * setting.
     */
    struct InvertedCheck {
        std::vector<ElementId> controls;
        std::vector<ElementId> targets;
        bool reports = false;
        std::string reportCode;
    };
    std::vector<InvertedCheck> invertedChecks;
};

/** Is this STE a record-window guard ([\xFF], always enabled)? */
bool
isWindowGuard(const Element &element)
{
    return element.kind == ElementKind::Ste &&
           element.start == StartKind::AllInput &&
           element.symbols == CharSet::single(0xFF);
}

/** Collect the STE operands of a control signal (STE or OR of STEs). */
bool
controlStes(const Automaton &automaton,
            const std::vector<std::vector<std::pair<ElementId, Port>>>
                &fan_in,
            ElementId control, std::vector<ElementId> &out,
            std::set<ElementId> &removed)
{
    const Element &element = automaton[control];
    if (element.kind == ElementKind::Ste) {
        out.push_back(control);
        return true;
    }
    if (element.kind == ElementKind::Gate && element.op == GateOp::Or) {
        for (auto &[src, port] : fan_in[control]) {
            (void)port;
            if (automaton[src].kind != ElementKind::Ste)
                return false;
            out.push_back(src);
        }
        removed.insert(control);
        return true;
    }
    return false;
}

/**
 * Try to build an expansion plan for @p counter; nullopt when the
 * counter's shape is unsupported.
 */
std::optional<CounterPlan>
analyze(const Automaton &automaton,
        const std::vector<std::vector<std::pair<ElementId, Port>>>
            &fan_in,
        const std::vector<size_t> &component_of, ElementId counter)
{
    const Element &element = automaton[counter];
    if (element.mode != CounterMode::Latch || element.target == 0)
        return std::nullopt;

    CounterPlan plan;
    plan.counter = counter;
    plan.target = element.target;
    plan.removed.insert(counter);
    plan.counterReports = element.report;
    plan.counterReportCode = element.reportCode;

    // Exactly one counter per component.
    size_t component = component_of[counter];
    for (ElementId i = 0; i < automaton.size(); ++i) {
        if (i != counter && component_of[i] == component &&
            automaton[i].kind == ElementKind::Counter) {
            return std::nullopt;
        }
    }

    // Inputs: counts from STEs; resets only from window guards.
    for (auto &[src, port] : fan_in[counter]) {
        if (port == Port::Count) {
            if (automaton[src].kind != ElementKind::Ste)
                return std::nullopt;
            plan.countSources.insert(src);
        } else if (port == Port::Reset) {
            if (!isWindowGuard(automaton[src]))
                return std::nullopt;
        }
    }
    if (plan.countSources.empty())
        return std::nullopt;

    // Consumers.
    for (const Edge &edge : element.outputs) {
        const Element &consumer = automaton[edge.to];
        if (consumer.kind == ElementKind::Ste) {
            plan.directTargets.push_back(edge.to);
            continue;
        }
        if (consumer.kind == ElementKind::Gate &&
            consumer.op == GateOp::Not) {
            // Inverter: all of its consumers must be AND gates whose
            // other operands are control STEs (or ORs of STEs) and
            // whose consumers are STEs / reports.
            plan.removed.insert(edge.to);
            for (const Edge &inv_edge : consumer.outputs) {
                const Element &gate = automaton[inv_edge.to];
                if (gate.kind != ElementKind::Gate ||
                    gate.op != GateOp::And) {
                    return std::nullopt;
                }
                CounterPlan::InvertedCheck check;
                for (auto &[src, port] : fan_in[inv_edge.to]) {
                    (void)port;
                    if (src == edge.to)
                        continue; // the inverter itself
                    if (!controlStes(automaton, fan_in, src,
                                     check.controls, plan.removed)) {
                        return std::nullopt;
                    }
                }
                if (check.controls.empty())
                    return std::nullopt;
                for (const Edge &out_edge : gate.outputs) {
                    if (automaton[out_edge.to].kind !=
                        ElementKind::Ste) {
                        return std::nullopt;
                    }
                    check.targets.push_back(out_edge.to);
                }
                check.reports = gate.report;
                check.reportCode = gate.reportCode;
                plan.removed.insert(inv_edge.to);
                plan.invertedChecks.push_back(std::move(check));
            }
            continue;
        }
        return std::nullopt;
    }

    // Every element this plan removes must not be used elsewhere: its
    // remaining consumers must themselves be removed or rewired.  The
    // shapes above guarantee it for codegen output; double-check that
    // no removed gate feeds anything outside the plan.
    for (ElementId removed : plan.removed) {
        if (removed == counter)
            continue;
        for (const Edge &edge : automaton[removed].outputs) {
            const Element &consumer = automaton[edge.to];
            bool accounted =
                plan.removed.count(edge.to) != 0 ||
                consumer.kind == ElementKind::Ste;
            if (!accounted)
                return std::nullopt;
        }
    }
    return plan;
}

/** Expand one planned counter; returns the rewritten automaton. */
Automaton
expand(const Automaton &automaton,
       const std::vector<size_t> &component_of, const CounterPlan &plan)
{
    const size_t component = component_of[plan.counter];
    // Bands 0..target-1 count below the threshold; band `target` is the
    // *entry* band (the latch event — counter rising edge); band
    // target+1 is the silent saturated state, so a thread that keeps
    // counting past the target does not re-report the way a banded
    // copy of the entry band would.
    const uint32_t saturated = plan.target + 1;
    const uint32_t bands = saturated + 1; // 0..target+1

    Automaton out;
    // (old element, band) -> new id; non-banded elements use band 0.
    std::map<std::pair<ElementId, uint32_t>, ElementId> placed;

    auto banded = [&](ElementId id) {
        return component_of[id] == component &&
               automaton[id].kind == ElementKind::Ste &&
               plan.removed.count(id) == 0;
    };

    // Pass 1: create elements.
    for (ElementId i = 0; i < automaton.size(); ++i) {
        const Element &element = automaton[i];
        if (plan.removed.count(i))
            continue;
        if (!banded(i)) {
            ElementId fresh = kNoElement;
            switch (element.kind) {
              case ElementKind::Ste:
                fresh = out.addSte(element.symbols, element.start,
                                   element.id);
                break;
              case ElementKind::Counter:
                fresh = out.addCounter(element.target, element.mode,
                                       element.id);
                break;
              case ElementKind::Gate:
                fresh = out.addGate(element.op, element.id);
                break;
            }
            if (element.report)
                out.setReport(fresh, element.reportCode);
            placed[{i, 0}] = fresh;
            continue;
        }
        for (uint32_t r = 0; r < bands; ++r) {
            std::string id =
                r == 0 ? element.id
                       : strprintf("%s__b%u", element.id.c_str(), r);
            // Start kinds apply to band 0 only: a thread begins with
            // zero counted.
            StartKind start =
                r == 0 ? element.start : StartKind::None;
            ElementId fresh = out.addSte(element.symbols, start, id);
            if (element.report)
                out.setReport(fresh, element.reportCode);
            placed[{i, r}] = fresh;
        }
    }

    auto band_of_target = [&](ElementId target, uint32_t from) {
        uint32_t pulse = plan.countSources.count(target) ? 1 : 0;
        return std::min(from + pulse, saturated);
    };

    // Pass 2: edges.
    for (ElementId i = 0; i < automaton.size(); ++i) {
        const Element &element = automaton[i];
        if (plan.removed.count(i))
            continue;
        uint32_t source_bands = banded(i) ? bands : 1;
        for (const Edge &edge : element.outputs) {
            if (plan.removed.count(edge.to))
                continue; // count/reset/check wiring handled below
            for (uint32_t r = 0; r < source_bands; ++r) {
                ElementId from = placed[{i, r}];
                if (!banded(edge.to)) {
                    out.connect(from, placed[{edge.to, 0}], edge.port);
                    continue;
                }
                // Banded target: entering a count source increments
                // the band.  Non-banded sources (e.g. window guards in
                // other... same component but removed? guards are
                // banded unless removed) enter at their own band r.
                uint32_t target_band = band_of_target(edge.to, r);
                out.connect(from, placed[{edge.to, target_band}],
                            edge.port);
            }
        }
    }

    // Pass 3: the counter's consumers.
    // (a) Counter reporting: a count pulse into the entry band is the
    // latch event (the counter's rising edge) — entry-band copies of
    // count sources report; saturated-band copies stay silent.
    if (plan.counterReports) {
        for (ElementId src : plan.countSources) {
            out.setReport(placed[{src, plan.target}],
                          plan.counterReportCode);
        }
    }
    // (b) Direct continuation: the latched output keeps the consumer
    // enabled, so both the entry and saturated bands drive it.
    for (ElementId target : plan.directTargets) {
        for (ElementId src : plan.countSources) {
            for (uint32_t r : {plan.target, saturated}) {
                ElementId from = placed[{src, r}];
                ElementId to = banded(target)
                                   ? placed[{target, r}]
                                   : placed[{target, 0}];
                out.connect(from, to);
            }
        }
    }
    // (c) Inverted checks: control copies below the threshold band
    // carry the check; the AND/inverter/OR scaffolding disappears.
    for (const CounterPlan::InvertedCheck &check :
         plan.invertedChecks) {
        for (ElementId ctrl : check.controls) {
            for (uint32_t r = 0; r < plan.target; ++r) {
                ElementId from = placed[{ctrl, r}];
                for (ElementId target : check.targets) {
                    ElementId to =
                        banded(target)
                            ? placed[{target,
                                      band_of_target(target, r)}]
                            : placed[{target, 0}];
                    out.connect(from, to);
                }
                if (check.reports)
                    out.setReport(from, check.reportCode);
            }
        }
    }
    return out;
}

} // namespace

size_t
expandPositional(Automaton &automaton, const PositionalOptions &options)
{
    size_t expanded = 0;
    // Re-analyze after each expansion (ids shift).
    bool progress = true;
    while (progress) {
        progress = false;
        auto fan_in = automaton.fanIn();
        auto components = automaton.components();
        std::vector<size_t> component_of(automaton.size(), 0);
        std::vector<size_t> component_stes(components.size(), 0);
        for (size_t c = 0; c < components.size(); ++c) {
            for (ElementId id : components[c]) {
                component_of[id] = c;
                if (automaton[id].kind == ElementKind::Ste)
                    ++component_stes[c];
            }
        }
        for (ElementId i = 0; i < automaton.size(); ++i) {
            if (automaton[i].kind != ElementKind::Counter)
                continue;
            auto plan =
                analyze(automaton, fan_in, component_of, i);
            if (!plan)
                continue;
            size_t banded_stes =
                component_stes[component_of[i]] *
                (static_cast<size_t>(plan->target) + 1);
            if (banded_stes > options.maxBandedStes)
                continue;
            automaton = expand(automaton, component_of, *plan);
            automaton.removeDeadElements();
            ++expanded;
            progress = true;
            break;
        }
    }
    return expanded;
}

} // namespace rapid::automata
