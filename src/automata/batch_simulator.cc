#include "automata/batch_simulator.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <queue>
#include <thread>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "support/error.h"
#include "support/timer.h"

namespace rapid::automata {

namespace {

/**
 * Append a sorted lane list as (word, OR-mask) pairs — one compressed
 * row of the activation bit-matrix.
 */
void
appendSuccRow(std::vector<uint32_t> lanes, std::vector<uint32_t> &words,
              std::vector<uint64_t> &masks)
{
    std::sort(lanes.begin(), lanes.end());
    lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());
    for (size_t i = 0; i < lanes.size();) {
        uint32_t word = lanes[i] >> 6;
        uint64_t mask = 0;
        while (i < lanes.size() && (lanes[i] >> 6) == word) {
            mask |= 1ull << (lanes[i] & 63);
            ++i;
        }
        words.push_back(word);
        masks.push_back(mask);
    }
}

} // namespace

BatchSimulator::BatchSimulator(const Automaton &automaton)
    : _automaton(automaton)
{
    _automaton.validate();
    auto fan_in = _automaton.fanIn();

    // Lane assignment: STEs keep their relative element order, so
    // within-word lane order equals element-id order.
    std::vector<uint32_t> lane_of(_automaton.size(), UINT32_MAX);
    for (ElementId i = 0; i < _automaton.size(); ++i) {
        if (_automaton[i].kind == ElementKind::Ste) {
            lane_of[i] = static_cast<uint32_t>(_numStes++);
            _steElement.push_back(i);
        }
    }
    _words = (_numStes + 63) / 64;

    // Symbol table: row s = bitvector of lanes whose class contains s.
    _matchTable.assign(256 * _words, 0);
    _alwaysMask.assign(_words, 0);
    _startMask.assign(_words, 0);
    _reportMask.assign(_words, 0);
    for (size_t lane = 0; lane < _numStes; ++lane) {
        const Element &element = _automaton[_steElement[lane]];
        const size_t word = lane >> 6;
        const uint64_t bit = 1ull << (lane & 63);
        for (unsigned symbol = 0; symbol < 256; ++symbol) {
            if (element.symbols.test(
                    static_cast<unsigned char>(symbol)))
                _matchTable[symbol * _words + word] |= bit;
        }
        if (element.start == StartKind::AllInput)
            _alwaysMask[word] |= bit;
        else if (element.start == StartKind::StartOfData)
            _startMask[word] |= bit;
        if (element.report)
            _reportMask[word] |= bit;
    }

    // Activation fan-out rows for STE lanes.
    _succOffset.reserve(_numStes + 1);
    for (size_t lane = 0; lane < _numStes; ++lane) {
        _succOffset.push_back(static_cast<uint32_t>(_succWord.size()));
        std::vector<uint32_t> targets;
        for (const Edge &edge : _automaton[_steElement[lane]].outputs) {
            if (edge.port == Port::Activate &&
                _automaton[edge.to].kind == ElementKind::Ste)
                targets.push_back(lane_of[edge.to]);
        }
        appendSuccRow(std::move(targets), _succWord, _succMask);
    }
    _succOffset.push_back(static_cast<uint32_t>(_succWord.size()));

    // Byte-indexed successor union tables.  Entry [slot][v] is built
    // incrementally: strip the lowest set bit of v and OR that lane's
    // CSR row onto the already-built row for the remaining bits.
    if (_numStes > 0 && _words <= kByteTableMaxWords) {
        const size_t slots = _words * 8;
        _succByte.assign(slots * 256 * _words, 0);
        for (size_t slot = 0; slot < slots; ++slot) {
            uint64_t *table = _succByte.data() + slot * 256 * _words;
            for (unsigned v = 1; v < 256; ++v) {
                uint64_t *row = table + size_t(v) * _words;
                const unsigned rest = v & (v - 1);
                const uint64_t *base = table + size_t(rest) * _words;
                for (size_t w = 0; w < _words; ++w)
                    row[w] = base[w];
                const uint32_t lane = static_cast<uint32_t>(
                    slot * 8 +
                    static_cast<unsigned>(__builtin_ctz(v)));
                if (lane >= _numStes)
                    continue;
                for (uint32_t k = _succOffset[lane];
                     k < _succOffset[lane + 1]; ++k)
                    row[_succWord[k]] |= _succMask[k];
            }
        }
        _byteTables = true;
    }

    // Topologically order the combinational nodes (Kahn), exactly as
    // the scalar engine does.
    std::vector<int> degree(_automaton.size(), 0);
    for (ElementId i = 0; i < _automaton.size(); ++i) {
        if (_automaton[i].kind == ElementKind::Ste)
            continue;
        for (auto &[src, port] : fan_in[i]) {
            (void)port;
            if (_automaton[src].kind != ElementKind::Ste)
                ++degree[i];
        }
    }
    std::queue<ElementId> ready;
    for (ElementId i = 0; i < _automaton.size(); ++i) {
        if (_automaton[i].kind != ElementKind::Ste && degree[i] == 0)
            ready.push(i);
    }
    std::vector<ElementId> order;
    while (!ready.empty()) {
        ElementId node = ready.front();
        ready.pop();
        order.push_back(node);
        for (const Edge &edge : _automaton[node].outputs) {
            if (_automaton[edge.to].kind == ElementKind::Ste)
                continue;
            if (--degree[edge.to] == 0)
                ready.push(edge.to);
        }
    }

    // Flatten each comb node: inputs resolve to STE lanes or to the
    // evaluation position of an earlier comb node.
    std::vector<uint32_t> comb_pos(_automaton.size(), UINT32_MAX);
    for (size_t n = 0; n < order.size(); ++n)
        comb_pos[order[n]] = static_cast<uint32_t>(n);
    for (ElementId id : order) {
        const Element &element = _automaton[id];
        CombNode node;
        node.element = id;
        node.kind = element.kind;
        node.op = element.op;
        node.target = element.target;
        node.mode = element.mode;
        node.report = element.report;
        node.inBegin = static_cast<uint32_t>(_combInputs.size());
        for (auto &[src, port] : fan_in[id]) {
            CombInput input;
            if (_automaton[src].kind == ElementKind::Ste) {
                input.src = lane_of[src];
                input.steSource = 1;
            } else {
                input.src = comb_pos[src];
                input.steSource = 0;
            }
            input.port = port;
            _combInputs.push_back(input);
        }
        node.inEnd = static_cast<uint32_t>(_combInputs.size());
        node.succBegin = static_cast<uint32_t>(_succWord.size());
        std::vector<uint32_t> targets;
        for (const Edge &edge : element.outputs) {
            if (edge.port == Port::Activate &&
                _automaton[edge.to].kind == ElementKind::Ste)
                targets.push_back(lane_of[edge.to]);
        }
        appendSuccRow(std::move(targets), _succWord, _succMask);
        node.succEnd = static_cast<uint32_t>(_succWord.size());
        if (element.kind == ElementKind::Counter)
            node.counterSlot = static_cast<uint32_t>(_numCounters++);
        _comb.push_back(node);
    }

    // SIMD kernel selection: once per construction, dispatched on the
    // design's row width and honoring the RAPID_KERNEL override (see
    // match_kernels.h) — narrow rows gain nothing from 256-bit lanes.
    _ops = &kernels::select(_words);

    // Rare-byte literal prefilter, STE-only designs: when the enable
    // frontier has collapsed to the always-enabled set, a byte that
    // matches no always-enabled lane activates nothing, reports
    // nothing, and leaves the frontier unchanged — so runs of such
    // cold bytes are skipped without stepping the automaton.  Gates
    // can fire on silence (NOR) and counters carry sequential state,
    // so any combinational network disables the filter.
    if (_comb.empty()) {
        for (unsigned symbol = 0; symbol < 256; ++symbol) {
            uint64_t hot = 0;
            for (size_t w = 0; w < _words; ++w)
                hot |= _matchTable[symbol * _words + w] &
                       _alwaysMask[w];
            _hotByte[symbol] = hot != 0 ? 1 : 0;
        }
        _prefilter = true;
    }
}

void
BatchSimulator::resetStream(StreamState &state) const
{
    state.enabled.assign(_words, 0);
    state.active.assign(_words, 0);
    state.next.assign(_words, 0);
    for (size_t w = 0; w < _words; ++w)
        state.enabled[w] = _alwaysMask[w] | _startMask[w];
    state.combSignal.assign(_comb.size(), 0);
    state.counters.assign(_numCounters, CounterState{});
    state.reports.clear();
    state.cycle = 0;
}

void
BatchSimulator::stepStream(StreamState &state, unsigned char symbol) const
{
    const uint64_t *row = _matchTable.data() + size_t(symbol) * _words;
    uint64_t *active = state.active.data();
    const uint64_t *enabled = state.enabled.data();

    // Phase 1: STE matching, one AND per 64 lanes.
    _ops->andRows(active, enabled, row, _words);

    const size_t cycle_start = state.reports.size();

    // Phase 2+3 for the combinational network (usually empty; gates
    // such as NOR fire on silence, so this cannot be skipped when
    // present).
    for (size_t n = 0; n < _comb.size(); ++n) {
        const CombNode &node = _comb[n];
        if (node.kind == ElementKind::Counter) {
            bool count_pulse = false;
            bool reset_pulse = false;
            for (uint32_t k = node.inBegin; k < node.inEnd; ++k) {
                const CombInput &input = _combInputs[k];
                bool sig = input.steSource
                               ? ((active[input.src >> 6] >>
                                   (input.src & 63)) &
                                  1) != 0
                               : state.combSignal[input.src] != 0;
                if (!sig)
                    continue;
                if (input.port == Port::Count)
                    count_pulse = true;
                else if (input.port == Port::Reset)
                    reset_pulse = true;
            }
            CounterState &counter = state.counters[node.counterSlot];
            bool out = false;
            if (reset_pulse) {
                counter.value = 0;
                counter.latched = false;
            } else if (count_pulse) {
                if (counter.value < node.target)
                    ++counter.value;
                if (counter.value >= node.target) {
                    switch (node.mode) {
                      case CounterMode::Latch:
                        counter.latched = true;
                        break;
                      case CounterMode::Pulse:
                        out = true;
                        break;
                      case CounterMode::Roll:
                        out = true;
                        counter.value = 0;
                        break;
                    }
                }
            }
            if (node.mode == CounterMode::Latch && counter.latched)
                out = true;
            if (out && !counter.prevOut && node.report)
                state.reports.push_back(
                    ReportEvent{state.cycle, node.element});
            counter.prevOut = out;
            state.combSignal[n] = out ? 1 : 0;
        } else { // Gate
            bool all = true;
            bool any = false;
            for (uint32_t k = node.inBegin; k < node.inEnd; ++k) {
                const CombInput &input = _combInputs[k];
                bool sig = input.steSource
                               ? ((active[input.src >> 6] >>
                                   (input.src & 63)) &
                                  1) != 0
                               : state.combSignal[input.src] != 0;
                if (sig)
                    any = true;
                else
                    all = false;
            }
            bool out = false;
            switch (node.op) {
              case GateOp::And:
                out = all;
                break;
              case GateOp::Or:
                out = any;
                break;
              case GateOp::Not:
                out = !any;
                break;
              case GateOp::Nand:
                out = !all;
                break;
              case GateOp::Nor:
                out = !any;
                break;
            }
            state.combSignal[n] = out ? 1 : 0;
            if (out && node.report)
                state.reports.push_back(
                    ReportEvent{state.cycle, node.element});
        }
    }

    // Phase 3: STE reports, one AND per word plus a bit scan.
    for (size_t w = 0; w < _words; ++w) {
        uint64_t reporting = active[w] & _reportMask[w];
        while (reporting) {
            const uint32_t lane =
                static_cast<uint32_t>(w * 64) +
                static_cast<uint32_t>(__builtin_ctzll(reporting));
            state.reports.push_back(
                ReportEvent{state.cycle, _steElement[lane]});
            reporting &= reporting - 1;
        }
    }
    // Within-cycle order is element-id order (the documented
    // contract); comb events were appended first, so sort the tail.
    if (state.reports.size() - cycle_start > 1) {
        std::sort(state.reports.begin() +
                      static_cast<ptrdiff_t>(cycle_start),
                  state.reports.end());
    }

    // Phase 4: next-cycle enables — byte-table ORs when compiled,
    // otherwise per-bit CSR OR-mask rows.
    uint64_t *next = state.next.data();
    std::fill(state.next.begin(), state.next.end(), 0);
    if (_byteTables) {
        const uint64_t *tables = _succByte.data();
        for (size_t w = 0; w < _words; ++w) {
            uint64_t bits = active[w];
            for (size_t slot = w * 8; bits; ++slot, bits >>= 8) {
                const size_t value = bits & 0xff;
                if (!value)
                    continue;
                const uint64_t *row =
                    tables + (slot * 256 + value) * _words;
                _ops->orInto(next, row, _words);
            }
        }
    } else {
        for (size_t w = 0; w < _words; ++w) {
            uint64_t bits = active[w];
            while (bits) {
                const uint32_t lane =
                    static_cast<uint32_t>(w * 64) +
                    static_cast<uint32_t>(__builtin_ctzll(bits));
                for (uint32_t k = _succOffset[lane];
                     k < _succOffset[lane + 1]; ++k)
                    next[_succWord[k]] |= _succMask[k];
                bits &= bits - 1;
            }
        }
    }
    for (size_t n = 0; n < _comb.size(); ++n) {
        if (!state.combSignal[n])
            continue;
        const CombNode &node = _comb[n];
        for (uint32_t k = node.succBegin; k < node.succEnd; ++k)
            next[_succWord[k]] |= _succMask[k];
    }
    state.enabled.swap(state.next);
    for (size_t w = 0; w < _words; ++w)
        state.enabled[w] |= _alwaysMask[w];
    ++state.cycle;
}

/**
 * Register-resident hot loop for the common case: every lane fits in
 * one word and there is no combinational network.  Lanes are scanned
 * in ascending order, so within-cycle events are already element-id
 * ordered and no sort is needed.  Resumable: consumes from whatever
 * frontier/offset @p state carries.
 */
void
BatchSimulator::runSingleWordSteOnly(StreamState &state,
                                     std::string_view input) const
{
    const uint64_t *match = _matchTable.data();
    const uint64_t *tables = _succByte.data();
    const uint64_t always = _alwaysMask[0];
    const uint64_t report_mask = _reportMask[0];
    const uint8_t *hot = _hotByte.data();
    // Fixed, branch-free successor lookup: byte value 0 indexes an
    // all-zero row, so every populated slot is OR-ed unconditionally.
    const size_t slots = (_numStes + 7) / 8;
    const size_t size = input.size();
    uint64_t enabled = state.enabled[0];
    uint64_t cycle = state.cycle;
    for (size_t pos = 0; pos < size; ++pos) {
        // Literal prefilter: an idle frontier (always-enabled lanes
        // only) plus a cold byte is a guaranteed no-op cycle — scan
        // forward to the next hot byte without touching the automaton.
        if (enabled == always) {
            while (pos < size &&
                   !hot[static_cast<unsigned char>(input[pos])]) {
                ++pos;
                ++cycle;
            }
            if (pos >= size)
                break;
        }
        const uint64_t active =
            enabled & match[static_cast<unsigned char>(input[pos])];
        uint64_t reporting = active & report_mask;
        while (reporting) {
            const uint32_t lane = static_cast<uint32_t>(
                __builtin_ctzll(reporting));
            state.reports.push_back(
                ReportEvent{cycle, _steElement[lane]});
            reporting &= reporting - 1;
        }
        uint64_t next = 0;
        uint64_t bits = active;
        for (size_t slot = 0; slot < slots; ++slot, bits >>= 8)
            next |= tables[slot * 256 + (bits & 0xff)];
        enabled = next | always;
        ++cycle;
    }
    state.enabled[0] = enabled;
    state.cycle = cycle;
}

/**
 * Kernel-dispatched hot loop for STE-only designs spanning several
 * words (up to kByteTableMaxWords, so the byte tables exist).  The
 * match AND and the successor-union ORs run through the selected SIMD
 * kernel; the rare-byte prefilter applies exactly as in the
 * single-word path.  Resumable like runSingleWordSteOnly.
 */
void
BatchSimulator::runMultiWordSteOnly(StreamState &state,
                                    std::string_view input) const
{
    const size_t words = _words;
    const uint64_t *match = _matchTable.data();
    const uint64_t *tables = _succByte.data();
    const uint64_t *always = _alwaysMask.data();
    const uint64_t *report_mask = _reportMask.data();
    const uint8_t *hot = _hotByte.data();
    const kernels::Ops &ops = *_ops;
    uint64_t *enabled = state.enabled.data();
    uint64_t *active = state.active.data();
    uint64_t *next = state.next.data();
    const size_t size = input.size();
    uint64_t cycle = state.cycle;

    // Idle test for the prefilter: true when no lane beyond the
    // always-enabled set is live.  Maintained incrementally — the
    // previous iteration's successor union was empty.
    auto is_idle = [&] {
        for (size_t w = 0; w < words; ++w) {
            if (enabled[w] != always[w])
                return false;
        }
        return true;
    };
    bool idle = is_idle();

    for (size_t pos = 0; pos < size; ++pos) {
        if (idle) {
            while (pos < size &&
                   !hot[static_cast<unsigned char>(input[pos])]) {
                ++pos;
                ++cycle;
            }
            if (pos >= size)
                break;
        }
        const uint64_t *row =
            match +
            size_t(static_cast<unsigned char>(input[pos])) * words;
        ops.andRows(active, enabled, row, words);

        for (size_t w = 0; w < words; ++w) {
            uint64_t reporting = active[w] & report_mask[w];
            while (reporting) {
                const uint32_t lane =
                    static_cast<uint32_t>(w * 64) +
                    static_cast<uint32_t>(__builtin_ctzll(reporting));
                state.reports.push_back(
                    ReportEvent{cycle, _steElement[lane]});
                reporting &= reporting - 1;
            }
        }

        for (size_t w = 0; w < words; ++w)
            next[w] = 0;
        for (size_t w = 0; w < words; ++w) {
            uint64_t bits = active[w];
            for (size_t slot = w * 8; bits; ++slot, bits >>= 8) {
                const size_t value = bits & 0xff;
                if (!value)
                    continue;
                ops.orInto(next, tables + (slot * 256 + value) * words,
                           words);
            }
        }
        uint64_t live = 0;
        for (size_t w = 0; w < words; ++w) {
            enabled[w] = next[w] | always[w];
            live |= next[w];
        }
        // Empty successor union: the frontier is exactly the always
        // set, so the prefilter may engage on the next symbol.
        idle = live == 0;
        ++cycle;
    }
    state.cycle = cycle;
}

/**
 * Consume @p input through the fastest path this design admits:
 * single-word register loop, kernel-dispatched multi-word loop, or
 * the generic step loop (combinational networks, byte-table-less
 * giants).  Resumes from @p state's current frontier and offset.
 */
void
BatchSimulator::advanceState(StreamState &state,
                             std::string_view input) const
{
    if (_comb.empty() && _byteTables) {
        if (_words == 1)
            runSingleWordSteOnly(state, input);
        else
            runMultiWordSteOnly(state, input);
        return;
    }
    for (const char c : input)
        stepStream(state, static_cast<unsigned char>(c));
}

void
BatchSimulator::profileCycle(const StreamState &state,
                             uint64_t reported,
                             obs::ExecutionProfile &profile) const
{
    uint64_t active_count = 0;
    for (size_t w = 0; w < _words; ++w) {
        uint64_t bits = state.active[w];
        active_count +=
            static_cast<uint64_t>(__builtin_popcountll(bits));
        while (bits) {
            const uint32_t lane =
                static_cast<uint32_t>(w * 64) +
                static_cast<uint32_t>(__builtin_ctzll(bits));
            ++profile.elementActivations[_steElement[lane]];
            bits &= bits - 1;
        }
    }
    for (size_t n = 0; n < _comb.size(); ++n) {
        if (state.combSignal[n]) {
            ++active_count;
            ++profile.elementActivations[_comb[n].element];
        }
    }
    profile.recordCycle(active_count, reported);
}

void
BatchSimulator::runInto(StreamState &state, std::string_view input,
                        obs::ExecutionProfile *profile) const
{
    resetStream(state);
    if (!profile) {
        advanceState(state, input);
        return;
    }
    // Profiled streams always take the instrumented step loop; the
    // fast path neither materializes state.active nor surfaces
    // per-cycle counts.
    profile->ensureElements(_automaton.size());
    for (const char c : input) {
        const size_t before = state.reports.size();
        stepStream(state, static_cast<unsigned char>(c));
        profileCycle(state, state.reports.size() - before, *profile);
    }
}

std::vector<ReportEvent>
BatchSimulator::run(std::string_view input) const
{
    StreamState state;
    runInto(state, input, nullptr);
    return std::move(state.reports);
}

BatchSimulator::Cursor
BatchSimulator::startCursor() const
{
    Cursor cursor;
    resetStream(cursor._state);
    return cursor;
}

BatchSimulator::Cursor
BatchSimulator::speculativeCursor(uint64_t offset) const
{
    Cursor cursor;
    resetStream(cursor._state);
    cursor._state.cycle = offset;
    // All-states frontier: every lane enabled, partial last word
    // masked so ghost lanes never light up.
    for (size_t w = 0; w < _words; ++w)
        cursor._state.enabled[w] = ~0ull;
    if (_numStes % 64 != 0 && _words > 0) {
        cursor._state.enabled[_words - 1] =
            (1ull << (_numStes % 64)) - 1;
    }
    return cursor;
}

void
BatchSimulator::advance(Cursor &cursor, std::string_view chunk) const
{
    advanceState(cursor._state, chunk);
}

void
BatchSimulator::advanceOne(Cursor &cursor, unsigned char symbol) const
{
    stepStream(cursor._state, symbol);
}

BatchSimulator::Frontier
BatchSimulator::captureFrontier(const Cursor &cursor) const
{
    Frontier frontier;
    frontier.enabled = cursor._state.enabled;
    frontier.combSignal = cursor._state.combSignal;
    frontier.counters = cursor._state.counters;
    frontier.reportCount = cursor._state.reports.size();
    return frontier;
}

bool
BatchSimulator::frontierMatches(const Cursor &cursor,
                                const Frontier &frontier) const
{
    return cursor._state.enabled == frontier.enabled &&
           cursor._state.combSignal == frontier.combSignal &&
           cursor._state.counters == frontier.counters;
}

std::vector<ReportEvent>
BatchSimulator::run(std::string_view input,
                    obs::ExecutionProfile &profile) const
{
    StreamState state;
    runInto(state, input, &profile);
    return std::move(state.reports);
}

std::vector<std::vector<ReportEvent>>
BatchSimulator::runBatch(const std::vector<std::string_view> &inputs,
                         unsigned threads,
                         obs::ExecutionProfile *profile) const
{
    std::vector<std::vector<ReportEvent>> results(inputs.size());
    unsigned workers = threads != 0
                           ? threads
                           : std::thread::hardware_concurrency();
    if (workers == 0)
        workers = 1;
    if (workers > inputs.size())
        workers = static_cast<unsigned>(inputs.size());
    if (workers == 0)
        return results;

    // Pool telemetry is collected only when stats are on (checked once
    // per batch, not per stream) so the default path adds no timing
    // calls.
    const bool stats = obs::statsEnabled();
    Timer wall;
    std::vector<double> busy(workers, 0.0);
    std::vector<obs::ExecutionProfile> worker_profiles(
        profile ? workers : 0);

    auto process = [&](unsigned wid, StreamState &state, size_t i) {
        if (profile) {
            obs::ExecutionProfile stream_profile;
            runInto(state, inputs[i], &stream_profile);
            worker_profiles[wid].merge(stream_profile);
        } else {
            runInto(state, inputs[i], nullptr);
        }
        results[i] = std::move(state.reports);
        state.reports = {};
    };

    if (workers <= 1) {
        StreamState state;
        for (size_t i = 0; i < inputs.size(); ++i)
            process(0, state, i);
        if (profile)
            profile->merge(worker_profiles[0]);
        busy[0] = wall.seconds();
    } else {
        std::atomic<size_t> cursor{0};
        auto worker = [&](unsigned wid) {
            StreamState state;
            while (true) {
                const size_t i =
                    cursor.fetch_add(1, std::memory_order_relaxed);
                if (i >= inputs.size())
                    return;
                if (stats) {
                    Timer timer;
                    process(wid, state, i);
                    busy[wid] += timer.seconds();
                } else {
                    process(wid, state, i);
                }
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t)
            pool.emplace_back(worker, t);
        for (std::thread &thread : pool)
            thread.join();
        if (profile) {
            for (const obs::ExecutionProfile &wp : worker_profiles)
                profile->merge(wp);
        }
    }

    if (stats) {
        auto &registry = obs::MetricsRegistry::instance();
        const double wall_s = wall.seconds();
        double busy_total = 0.0;
        for (unsigned w = 0; w < workers; ++w) {
            busy_total += busy[w];
            registry.histogram("batch.worker_busy_ms")
                .record(busy[w] * 1e3);
        }
        registry.gauge("batch.workers")
            .set(static_cast<double>(workers));
        registry.counter("batch.streams").add(inputs.size());
        if (wall_s > 0) {
            registry.gauge("batch.utilization")
                .set(busy_total / (workers * wall_s));
        }
    }
    return results;
}

} // namespace rapid::automata
