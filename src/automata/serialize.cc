#include "automata/serialize.h"

#include "support/error.h"
#include "support/strings.h"

namespace rapid::automata {

namespace {

/**
 * Serialized size floor of one element: kind + start + report + mode +
 * op (5 × u8), target (u32), two string length prefixes and the edge
 * count (3 × u64), and the 256-bit charset bitmap.  Used to reject
 * corrupt element counts before any allocation.
 */
constexpr size_t kMinElementBytes =
    5 * 1 + 4 + 3 * 8 + CharSet::kWords * 8;

/** Per-edge bytes: target u32 + port u8. */
constexpr size_t kEdgeBytes = 4 + 1;

uint8_t
checkedEnum(BinaryReader &reader, uint8_t max, const char *what)
{
    uint8_t value = reader.u8();
    if (value > max) {
        throw Error(strprintf("design: invalid %s tag %u at offset %zu",
                              what, value, reader.offset() - 1));
    }
    return value;
}

} // namespace

void
serializeAutomaton(BinaryWriter &writer, const Automaton &automaton)
{
    writer.u64(automaton.size());
    for (const Element &element : automaton.elements()) {
        writer.u8(static_cast<uint8_t>(element.kind));
        writer.str(element.id);
        writer.u8(element.report ? 1 : 0);
        writer.str(element.reportCode);
        writer.u8(static_cast<uint8_t>(element.start));
        for (size_t i = 0; i < CharSet::kWords; ++i)
            writer.u64(element.symbols.word(i));
        writer.u32(element.target);
        writer.u8(static_cast<uint8_t>(element.mode));
        writer.u8(static_cast<uint8_t>(element.op));
        writer.u64(element.outputs.size());
        for (const Edge &edge : element.outputs) {
            writer.u32(edge.to);
            writer.u8(static_cast<uint8_t>(edge.port));
        }
    }
}

Automaton
deserializeAutomaton(BinaryReader &reader, bool validate)
{
    const uint64_t total = reader.count(kMinElementBytes);
    if (total > kNoElement) {
        throw Error(strprintf(
            "design: element count %llu exceeds the id space",
            static_cast<unsigned long long>(total)));
    }

    Automaton automaton;
    // Edges may point forward, so elements are materialized first and
    // connected in a second pass.
    std::vector<std::vector<Edge>> outputs(total);
    for (uint64_t i = 0; i < total; ++i) {
        auto kind = static_cast<ElementKind>(
            checkedEnum(reader, static_cast<uint8_t>(ElementKind::Gate),
                        "element kind"));
        std::string id = reader.str();
        if (id.empty() || automaton.findId(id) != kNoElement) {
            throw Error(strprintf(
                "design: element %llu has a%s id%s",
                static_cast<unsigned long long>(i),
                id.empty() ? "n empty" : " duplicate",
                id.empty() ? "" : (" '" + id + "'").c_str()));
        }
        const bool report = checkedEnum(reader, 1, "report flag") != 0;
        std::string report_code = reader.str();
        auto start = static_cast<StartKind>(checkedEnum(
            reader, static_cast<uint8_t>(StartKind::StartOfData),
            "start kind"));
        CharSet symbols;
        for (size_t w = 0; w < CharSet::kWords; ++w)
            symbols.setWord(w, reader.u64());
        uint32_t target = reader.u32();
        auto mode = static_cast<CounterMode>(checkedEnum(
            reader, static_cast<uint8_t>(CounterMode::Roll),
            "counter mode"));
        auto op = static_cast<GateOp>(checkedEnum(
            reader, static_cast<uint8_t>(GateOp::Nor), "gate op"));

        ElementId added = kNoElement;
        switch (kind) {
          case ElementKind::Ste:
            added = automaton.addSte(symbols, start, id);
            break;
          case ElementKind::Counter:
            added = automaton.addCounter(target, mode, id);
            break;
          case ElementKind::Gate:
            added = automaton.addGate(op, id);
            break;
        }
        internalCheck(added == i, "deserialize: id/index drift");
        if (report)
            automaton.setReport(added, report_code);

        const uint64_t edges = reader.count(kEdgeBytes);
        outputs[i].reserve(edges);
        for (uint64_t e = 0; e < edges; ++e) {
            Edge edge;
            edge.to = reader.u32();
            edge.port = static_cast<Port>(checkedEnum(
                reader, static_cast<uint8_t>(Port::Reset), "port"));
            if (edge.to >= total) {
                throw Error(strprintf(
                    "design: edge %llu of element '%s' targets element "
                    "%u of %llu",
                    static_cast<unsigned long long>(e), id.c_str(),
                    edge.to, static_cast<unsigned long long>(total)));
            }
            outputs[i].push_back(edge);
        }
    }

    for (uint64_t i = 0; i < total; ++i) {
        for (const Edge &edge : outputs[i]) {
            const Element &target = automaton[edge.to];
            const bool counter_port =
                edge.port == Port::Count || edge.port == Port::Reset;
            if (counter_port !=
                (target.kind == ElementKind::Counter)) {
                throw Error(strprintf(
                    "design: edge %s -> %s uses port %u, which does "
                    "not match the target's kind",
                    automaton[static_cast<ElementId>(i)].id.c_str(),
                    target.id.c_str(),
                    static_cast<unsigned>(edge.port)));
            }
            automaton.connect(static_cast<ElementId>(i), edge.to,
                              edge.port);
        }
    }

    if (validate) {
        try {
            automaton.validate();
        } catch (const Error &error) {
            throw Error(std::string("design: loaded automaton fails "
                                    "validation: ") +
                        error.what());
        }
    }
    return automaton;
}

std::string
serializeAutomaton(const Automaton &automaton)
{
    BinaryWriter writer;
    serializeAutomaton(writer, automaton);
    return writer.take();
}

Automaton
deserializeAutomaton(std::string_view bytes, bool validate)
{
    BinaryReader reader(bytes, "design");
    Automaton automaton = deserializeAutomaton(reader, validate);
    reader.expectEnd();
    return automaton;
}

} // namespace rapid::automata
