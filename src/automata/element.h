/**
 * @file
 * Element descriptors for homogeneous-NFA designs.
 *
 * An automaton is a graph of three element kinds, mirroring the hardware
 * resources of the Automata Processor (Dlugosch et al. [10]):
 *
 *  - STE: a state transition element — a homogeneous NFA state labelled
 *    with a character class.  An STE that is *enabled* for the current
 *    symbol and whose class contains that symbol becomes *active* and
 *    drives its output connections.
 *  - Counter: a saturating up-counter with count-enable and reset input
 *    ports and a threshold ("target").  In Latch mode the output stays
 *    asserted once the target is reached; in Pulse mode it is asserted
 *    only on the cycle the target is reached.
 *  - Gate: an n-ary combinational boolean element (AND / OR / NOT / NOR /
 *    NAND) over the activation signals of its inputs.
 *
 * Connections between elements carry the *target port*: activation edges
 * enable a downstream STE on the next symbol cycle, whereas edges into
 * gates and counter ports are combinational within the current cycle.
 */
#ifndef RAPID_AUTOMATA_ELEMENT_H
#define RAPID_AUTOMATA_ELEMENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "automata/charset.h"

namespace rapid::automata {

/** Index of an element within its Automaton. */
using ElementId = uint32_t;

/** Sentinel for "no element". */
constexpr ElementId kNoElement = UINT32_MAX;

enum class ElementKind : uint8_t {
    Ste,
    Counter,
    Gate,
};

/** When an STE is enabled independently of incoming activations. */
enum class StartKind : uint8_t {
    /** Enabled only by incoming activation edges. */
    None,
    /** Enabled on every symbol cycle (the self-activating "star" form). */
    AllInput,
    /** Enabled only for the very first symbol of the stream. */
    StartOfData,
};

/** Boolean element operation. */
enum class GateOp : uint8_t {
    And,
    Or,
    Not,
    Nand,
    Nor,
};

/** Counter output behaviour once the target is reached. */
enum class CounterMode : uint8_t {
    /** Output stays asserted (used by all RAPID lowerings). */
    Latch,
    /** Output asserted only on the cycle the target is reached. */
    Pulse,
    /** As Pulse, but the internal value also resets to zero. */
    Roll,
};

/** Input port designator on a connection's target element. */
enum class Port : uint8_t {
    /** STE enable / gate operand input. */
    Activate,
    /** Counter count-enable input. */
    Count,
    /** Counter reset input. */
    Reset,
};

/** A directed connection to a target element's input port. */
struct Edge {
    ElementId to = kNoElement;
    Port port = Port::Activate;

    friend bool
    operator==(const Edge &a, const Edge &b)
    {
        return a.to == b.to && a.port == b.port;
    }
};

/**
 * One element of an automaton.
 *
 * Stored by value inside Automaton; fields not applicable to the
 * element's kind are left at their defaults.
 */
struct Element {
    ElementKind kind = ElementKind::Ste;

    /** Unique name, used by ANML output and report events. */
    std::string id;

    /** True when activation of this element generates a report event. */
    bool report = false;

    /** Free-form metadata attached to report events (e.g. macro name). */
    std::string reportCode;

    /// @name STE fields
    /// @{
    CharSet symbols;
    StartKind start = StartKind::None;
    /// @}

    /// @name Counter fields
    /// @{
    uint32_t target = 1;
    CounterMode mode = CounterMode::Latch;
    /// @}

    /// @name Gate fields
    /// @{
    GateOp op = GateOp::And;
    /// @}

    /** Outgoing connections. */
    std::vector<Edge> outputs;
};

/** Human-readable element kind name. */
const char *kindName(ElementKind kind);

/** Human-readable gate operation name ("and", "or", ...). */
const char *gateOpName(GateOp op);

} // namespace rapid::automata

#endif // RAPID_AUTOMATA_ELEMENT_H
