/**
 * @file
 * 256-way character classes for state transition elements (STEs).
 *
 * On the Automata Processor an STE's label is a column of SDRAM with one
 * row per input symbol; the STE matches a symbol exactly when that row's
 * bit is set.  CharSet models the column as a 256-bit bitmap and provides
 * the set algebra the compiler needs (union for OR-fusion, complement for
 * De Morgan negation, ...).
 */
#ifndef RAPID_AUTOMATA_CHARSET_H
#define RAPID_AUTOMATA_CHARSET_H

#include <array>
#include <cstdint>
#include <string>

namespace rapid::automata {

/** A set of 8-bit input symbols, stored as a 256-bit bitmap. */
class CharSet {
  public:
    /** The empty set. */
    constexpr CharSet() : _words{} {}

    /** The singleton set {symbol}. */
    static CharSet
    single(unsigned char symbol)
    {
        CharSet set;
        set.add(symbol);
        return set;
    }

    /** The universal set matching every symbol (a "star" STE). */
    static CharSet
    all()
    {
        CharSet set;
        for (auto &word : set._words)
            word = ~0ull;
        return set;
    }

    /** The inclusive symbol range [lo, hi]. */
    static CharSet
    range(unsigned char lo, unsigned char hi)
    {
        CharSet set;
        for (unsigned c = lo; c <= hi; ++c)
            set.add(static_cast<unsigned char>(c));
        return set;
    }

    /** The set of symbols occurring in @p chars. */
    static CharSet
    of(const std::string &chars)
    {
        CharSet set;
        for (char c : chars)
            set.add(static_cast<unsigned char>(c));
        return set;
    }

    void
    add(unsigned char symbol)
    {
        _words[symbol >> 6] |= 1ull << (symbol & 63);
    }

    void
    remove(unsigned char symbol)
    {
        _words[symbol >> 6] &= ~(1ull << (symbol & 63));
    }

    bool
    test(unsigned char symbol) const
    {
        return (_words[symbol >> 6] >> (symbol & 63)) & 1;
    }

    /** Number of symbols in the set. */
    int
    count() const
    {
        int total = 0;
        for (auto word : _words)
            total += __builtin_popcountll(word);
        return total;
    }

    bool
    empty() const
    {
        for (auto word : _words) {
            if (word)
                return false;
        }
        return true;
    }

    /** Complement (for negated character comparisons). */
    CharSet
    operator~() const
    {
        CharSet out;
        for (size_t i = 0; i < _words.size(); ++i)
            out._words[i] = ~_words[i];
        return out;
    }

    CharSet
    operator|(const CharSet &other) const
    {
        CharSet out;
        for (size_t i = 0; i < _words.size(); ++i)
            out._words[i] = _words[i] | other._words[i];
        return out;
    }

    CharSet
    operator&(const CharSet &other) const
    {
        CharSet out;
        for (size_t i = 0; i < _words.size(); ++i)
            out._words[i] = _words[i] & other._words[i];
        return out;
    }

    CharSet &
    operator|=(const CharSet &other)
    {
        for (size_t i = 0; i < _words.size(); ++i)
            _words[i] |= other._words[i];
        return *this;
    }

    bool
    operator==(const CharSet &other) const
    {
        return _words == other._words;
    }

    bool operator!=(const CharSet &other) const { return !(*this == other); }

    /**
     * Render in ANML symbol-set syntax, e.g. "[ab]", "[^a]", "*".
     *
     * Runs of consecutive symbols are collapsed to ranges ("[a-z]"); sets
     * denser than 128 symbols are rendered complemented.
     */
    std::string str() const;

    /**
     * Parse ANML symbol-set syntax produced by str().
     *
     * Accepts "*", "[...]" and "[^...]" with ranges and \xHH escapes.
     * @throws rapid::CompileError on malformed input.
     */
    static CharSet parse(const std::string &text);

    /** Number of 64-bit words in the bitmap (for serialization). */
    static constexpr size_t kWords = 4;

    /** Raw bitmap word @p i; bit b covers symbol i*64+b. */
    uint64_t word(size_t i) const { return _words[i]; }

    /** Overwrite bitmap word @p i (deserialization). */
    void setWord(size_t i, uint64_t value) { _words[i] = value; }

  private:
    std::array<uint64_t, 4> _words;
};

} // namespace rapid::automata

#endif // RAPID_AUTOMATA_CHARSET_H
