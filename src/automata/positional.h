/**
 * @file
 * Positional-encoding expansion of counters (§5.3's alternate
 * solution).
 *
 * The paper: "An alternate solution would be to use positional
 * encodings, which duplicate an automaton for each value a counter
 * might have, encoding the count in the position of states within an
 * automaton. … We chose not to implement this technique in our initial
 * compiler."  This pass implements it: a latching counter is replaced
 * by banded copies of its component's STEs — copy (s, r) means "control
 * is at s having counted r" — producing counter- and boolean-free
 * designs like the published hand-crafted MOTOMATA lattice (Table 4 H),
 * at the cost of roughly (target+1)× the states.
 *
 * Why one would want this despite the size: no special elements (more
 * portable placement), no clock division (Table 5's MOTOMATA R paid
 * divisor 2 for its counter+inverter), and per-thread counting
 * semantics under overlapping windows.
 *
 * Supported counters (others are left untouched):
 *  - Latch mode with a positive target;
 *  - count pulses come directly from STEs in the counter's component;
 *  - reset pulses only from record-window guards (STEs matching exactly
 *    the START_OF_INPUT symbol) — dropped, since banded threads restart
 *    at band 0 with each record and cannot survive a separator;
 *  - consumers are (a) the counter reporting directly, (b) Activate
 *    edges to STEs (non-inverted continuation), or (c) a single
 *    inverter feeding AND gates whose other operands are STEs in the
 *    component (the Table-2 inverted-check shape);
 *  - no other counter shares the component.
 */
#ifndef RAPID_AUTOMATA_POSITIONAL_H
#define RAPID_AUTOMATA_POSITIONAL_H

#include <cstddef>

#include "automata/automaton.h"

namespace rapid::automata {

/** Expansion limits. */
struct PositionalOptions {
    /** Skip counters whose expansion would exceed this many STEs. */
    size_t maxBandedStes = 100000;
};

/**
 * Expand every supported counter in @p automaton into positional
 * encoding.  Unsupported counters are left as-is.
 *
 * @return the number of counters expanded.
 */
size_t expandPositional(Automaton &automaton,
                        const PositionalOptions &options = {});

} // namespace rapid::automata

#endif // RAPID_AUTOMATA_POSITIONAL_H
