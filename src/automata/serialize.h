/**
 * @file
 * Binary serialization of Automaton designs.
 *
 * The element graph — kinds, ids, charset bitmaps, counter targets and
 * modes, gate operations, report flags/codes, and every edge — round
 * trips bit-exactly through serializeAutomaton()/deserializeAutomaton().
 * This is the payload of .apimg design images (see ap/image.h): unlike
 * the ANML text path, no charset re-rendering or id re-parsing is
 * involved, so a loaded design is structurally *identical* to the one
 * saved, not merely equivalent.
 *
 * Deserialization rebuilds the automaton through the ordinary builder
 * API and finishes with validate(), so a corrupt byte stream yields a
 * rapid::Error diagnostic, never a malformed in-memory design.
 */
#ifndef RAPID_AUTOMATA_SERIALIZE_H
#define RAPID_AUTOMATA_SERIALIZE_H

#include "automata/automaton.h"
#include "support/binio.h"

namespace rapid::automata {

/** Append @p automaton to @p writer. */
void serializeAutomaton(BinaryWriter &writer,
                        const Automaton &automaton);

/**
 * Decode one automaton from @p reader.
 *
 * @param validate run Automaton::validate() on the result (on by
 *        default; image loading relies on it to reject corrupt
 *        designs before they reach a simulator).
 * @throws rapid::Error on malformed bytes.
 */
Automaton deserializeAutomaton(BinaryReader &reader,
                               bool validate = true);

/** Convenience: serialize to a standalone byte string. */
std::string serializeAutomaton(const Automaton &automaton);

/** Convenience: decode a standalone byte string. */
Automaton deserializeAutomaton(std::string_view bytes,
                               bool validate = true);

} // namespace rapid::automata

#endif // RAPID_AUTOMATA_SERIALIZE_H
