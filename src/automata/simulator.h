/**
 * @file
 * Lock-step functional simulator for homogeneous-NFA designs.
 *
 * This is the repository's stand-in for the Automata Processor hardware
 * (and for tools like VASim): it executes an Automaton symbol-by-symbol
 * against an input stream, with the same per-cycle phase structure as
 * the device:
 *
 *   1. every *enabled* STE compares the current symbol against its
 *      character class; matching STEs become *active*;
 *   2. the combinational network of counters and boolean gates settles
 *      (evaluated in topological order — validate() guarantees
 *      acyclicity);
 *   3. active reporting elements emit report events carrying the current
 *      stream offset;
 *   4. activation edges out of every active element compute the STE
 *      enable set for the next symbol.
 *
 * Reset semantics: a counter that sees both a reset and a count pulse in
 * the same cycle resets (reset has priority).
 */
#ifndef RAPID_AUTOMATA_SIMULATOR_H
#define RAPID_AUTOMATA_SIMULATOR_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "automata/automaton.h"
#include "obs/profile.h"

namespace rapid::automata {

/** One report: a reporting element was active while consuming offset. */
struct ReportEvent {
    /** 0-based index of the consumed symbol that triggered the report. */
    uint64_t offset = 0;
    /** The reporting element. */
    ElementId element = kNoElement;

    friend bool
    operator==(const ReportEvent &a, const ReportEvent &b)
    {
        return a.offset == b.offset && a.element == b.element;
    }

    friend bool
    operator<(const ReportEvent &a, const ReportEvent &b)
    {
        return a.offset != b.offset ? a.offset < b.offset
                                    : a.element < b.element;
    }
};

/**
 * Executes one Automaton against symbol streams.
 *
 * The simulator borrows the Automaton, which must outlive it and must
 * not be mutated while simulations run.  Construction performs one-time
 * analysis (validation, topological ordering of the combinational
 * network, start-state indexing); individual runs are cheap.
 */
class Simulator {
  public:
    /** @throws CompileError when the design fails validation. */
    explicit Simulator(const Automaton &automaton);

    /** The simulator borrows the design; temporaries would dangle. */
    explicit Simulator(Automaton &&) = delete;

    /** Restore power-on state: no enables, counters at zero. */
    void reset();

    /** Consume one symbol; report events accumulate in reports(). */
    void step(unsigned char symbol);

    /** reset(), consume every byte of @p input, return the reports. */
    std::vector<ReportEvent> run(std::string_view input);

    /** Reports accumulated since the last reset(). */
    const std::vector<ReportEvent> &reports() const { return _reports; }

    /** Number of symbols consumed since the last reset(). */
    uint64_t cycle() const { return _cycle; }

    /**
     * Attach an execution-profile sink (nullptr detaches).  While
     * attached, every step() adds its active-element count, per-element
     * activations, and report count to @p profile; the un-profiled
     * path costs one predictable branch per step.  The sink is
     * borrowed and must outlive the attachment.
     */
    void setProfile(obs::ExecutionProfile *profile);

    /** Current value of a counter element (for tests). */
    uint32_t counterValue(ElementId element) const;

    /** Whether a latch-mode counter has latched (for tests). */
    bool counterLatched(ElementId element) const;

  private:
    struct CounterState {
        uint32_t value = 0;
        bool latched = false;
        /** Output signal on the previous cycle (for edge detection). */
        bool prevOut = false;
    };

    const Automaton &_automaton;

    /** Combinational nodes (gates/counters) in evaluation order. */
    std::vector<ElementId> _comb;
    /** Fan-in (source, port) lists, indexed by element. */
    std::vector<std::vector<std::pair<ElementId, Port>>> _fanIn;
    /** STEs enabled on every cycle (StartKind::AllInput). */
    std::vector<ElementId> _alwaysEnabled;
    /** STEs enabled only at offset 0 (StartKind::StartOfData). */
    std::vector<ElementId> _startOfData;
    /** Dense per-counter state slot; kNoElement-free mapping. */
    std::vector<uint32_t> _counterSlot;
    std::vector<CounterState> _counters;

    /** Enable flags for the current symbol, plus a unique id list. */
    std::vector<uint8_t> _enabled;
    std::vector<ElementId> _enabledList;
    /** Activation signal per element for the cycle being evaluated. */
    std::vector<uint8_t> _signal;
    /** Elements whose signal is set this cycle (for cheap clearing). */
    std::vector<ElementId> _signalList;

    /** Scratch buffers for the next-cycle enable set (see step()). */
    std::vector<uint8_t> _scratchEnabled;
    std::vector<ElementId> _scratchList;

    /** Counters whose output rose this cycle (they report on edges). */
    std::vector<ElementId> _risingCounters;

    std::vector<ReportEvent> _reports;
    uint64_t _cycle = 0;

    /** Optional profiling sink; nullptr when profiling is off. */
    obs::ExecutionProfile *_profile = nullptr;

    void setSignal(ElementId element);
    void enableNext(std::vector<uint8_t> &next_enabled,
                    std::vector<ElementId> &next_list, ElementId target);
};

} // namespace rapid::automata

#endif // RAPID_AUTOMATA_SIMULATOR_H
