#include "automata/witness.h"

#include <algorithm>
#include <queue>

#include "automata/simulator.h"
#include "support/error.h"

namespace rapid::automata {

namespace {

/** First symbol of a class, preferring printable characters. */
unsigned char
pickSymbol(const CharSet &set)
{
    for (int c = 0x61; c <= 0x7A; ++c) { // a-z first
        if (set.test(static_cast<unsigned char>(c)))
            return static_cast<unsigned char>(c);
    }
    for (int c = 0x20; c < 0x7F; ++c) {
        if (set.test(static_cast<unsigned char>(c)))
            return static_cast<unsigned char>(c);
    }
    for (int c = 0; c < 256; ++c) {
        if (set.test(static_cast<unsigned char>(c)))
            return static_cast<unsigned char>(c);
    }
    return 0;
}

/** Does this element drive any counter count port? */
bool
pulsesCounter(const Automaton &automaton, ElementId element)
{
    for (const Edge &edge : automaton[element].outputs) {
        if (edge.port == Port::Count)
            return true;
    }
    return false;
}

/**
 * Dijkstra over the activation graph.  Cost is dominated by symbols
 * consumed, with a small penalty for STEs that pulse counters so
 * mismatch arms are avoided when an equal-length clean path exists.
 *
 * dist[e] = cost of a shortest input prefix after which e is active
 * (STEs) or outputs high through pure fan-in (OR gates, counters are
 * handled by the caller).
 */
struct SearchResult {
    std::vector<uint64_t> dist;
    std::vector<ElementId> parent;
};

constexpr uint64_t kUnreached = UINT64_MAX;
constexpr uint64_t kSymbolCost = 1000;

/**
 * AND gates pass the search through when exactly one input needs a
 * driving path and every other input is an initially-high inverter
 * (NOT/NOR over a not-yet-latched counter) — the shape counter checks
 * lower to.
 */
bool
andTraversableVia(const Automaton &automaton,
                  const std::vector<std::vector<
                      std::pair<ElementId, Port>>> &fan_in,
                  ElementId gate, ElementId via)
{
    size_t driven = 0;
    bool via_driven = false;
    for (auto &[src, port] : fan_in[gate]) {
        (void)port;
        const Element &input = automaton[src];
        bool initially_high =
            input.kind == ElementKind::Gate &&
            (input.op == GateOp::Not || input.op == GateOp::Nor);
        if (!initially_high) {
            ++driven;
            via_driven |= src == via;
        }
    }
    return driven == 1 && via_driven;
}

SearchResult
search(const Automaton &automaton)
{
    SearchResult result;
    result.dist.assign(automaton.size(), kUnreached);
    result.parent.assign(automaton.size(), kNoElement);
    auto fan_in = automaton.fanIn();

    using Entry = std::pair<uint64_t, ElementId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;

    auto relax = [&](ElementId node, uint64_t cost, ElementId parent) {
        if (cost < result.dist[node]) {
            result.dist[node] = cost;
            result.parent[node] = parent;
            queue.emplace(cost, node);
        }
    };

    for (ElementId i = 0; i < automaton.size(); ++i) {
        const Element &element = automaton[i];
        if (element.kind == ElementKind::Ste &&
            element.start != StartKind::None) {
            uint64_t cost =
                kSymbolCost + (pulsesCounter(automaton, i) ? 1 : 0);
            relax(i, cost, kNoElement);
        }
    }

    while (!queue.empty()) {
        auto [cost, node] = queue.top();
        queue.pop();
        if (cost != result.dist[node])
            continue;
        for (const Edge &edge : automaton[node].outputs) {
            const Element &target = automaton[edge.to];
            if (edge.port != Port::Activate)
                continue;
            if (target.kind == ElementKind::Ste) {
                uint64_t extra =
                    kSymbolCost +
                    (pulsesCounter(automaton, edge.to) ? 1 : 0);
                relax(edge.to, cost + extra, node);
            } else if (target.kind == ElementKind::Gate &&
                       target.op == GateOp::Or) {
                // OR gates are combinational: no extra symbol.
                relax(edge.to, cost, node);
            } else if (target.kind == ElementKind::Gate &&
                       target.op == GateOp::And &&
                       andTraversableVia(automaton, fan_in, edge.to,
                                         node)) {
                relax(edge.to, cost, node);
            }
        }
    }
    return result;
}

/** Rebuild the symbol string along the parent chain ending at @p end. */
std::string
pathString(const Automaton &automaton, const SearchResult &result,
           ElementId end)
{
    std::string symbols;
    for (ElementId node = end; node != kNoElement;
         node = result.parent[node]) {
        if (automaton[node].kind == ElementKind::Ste)
            symbols.push_back(
                static_cast<char>(pickSymbol(automaton[node].symbols)));
    }
    std::reverse(symbols.begin(), symbols.end());
    return symbols;
}

/** Verify a candidate by simulation on a report-instrumented copy. */
bool
verify(const Automaton &automaton, ElementId element,
       const std::string &input)
{
    if (input.empty())
        return false;
    Automaton probe = automaton;
    probe.setReport(element, "__witness");
    Simulator sim(probe);
    for (const ReportEvent &event : sim.run(input)) {
        if (event.element == element &&
            event.offset == input.size() - 1) {
            return true;
        }
    }
    return false;
}

} // namespace

std::optional<Witness>
witnessFor(const Automaton &automaton, ElementId element)
{
    internalCheck(element < automaton.size(), "witnessFor: bad element");
    SearchResult result = search(automaton);

    std::vector<std::string> candidates;
    const Element &target = automaton[element];

    auto pathTo = [&](ElementId node) -> std::optional<std::string> {
        if (result.dist[node] == kUnreached)
            return std::nullopt;
        return pathString(automaton, result, node);
    };

    switch (target.kind) {
      case ElementKind::Ste: {
        if (auto path = pathTo(element))
            candidates.push_back(*path);
        break;
      }
      case ElementKind::Gate: {
        // OR: any input path.  NOT/NOR over a quiet design are high
        // immediately: any symbol.  AND: supported when exactly one
        // input needs a path and the rest are initially-high inverters.
        auto fan_in = automaton.fanIn();
        if (target.op == GateOp::Or) {
            for (auto &[src, port] : fan_in[element]) {
                (void)port;
                if (auto path = pathTo(src))
                    candidates.push_back(*path);
            }
        } else if (target.op == GateOp::Not ||
                   target.op == GateOp::Nor) {
            candidates.push_back("a");
        } else if (target.op == GateOp::And) {
            std::vector<ElementId> driven;
            for (auto &[src, port] : fan_in[element]) {
                (void)port;
                const Element &input = automaton[src];
                bool initially_high =
                    input.kind == ElementKind::Gate &&
                    (input.op == GateOp::Not ||
                     input.op == GateOp::Nor);
                if (!initially_high)
                    driven.push_back(src);
            }
            if (driven.size() == 1) {
                if (auto path = pathTo(driven.front()))
                    candidates.push_back(*path);
            }
        }
        break;
      }
      case ElementKind::Counter: {
        // Reach a count source, then extend with repeats of the last
        // symbol until the target is plausibly reached.
        auto fan_in = automaton.fanIn();
        for (auto &[src, port] : fan_in[element]) {
            if (port != Port::Count)
                continue;
            auto path = pathTo(src);
            if (!path || path->empty())
                continue;
            for (uint32_t repeats = 0; repeats < target.target * 2;
                 ++repeats) {
                std::string candidate =
                    *path +
                    std::string(repeats, path->back());
                candidates.push_back(std::move(candidate));
            }
        }
        break;
      }
    }

    for (const std::string &candidate : candidates) {
        if (verify(automaton, element, candidate)) {
            Witness witness;
            witness.element = element;
            witness.input = candidate;
            witness.offset = candidate.size() - 1;
            return witness;
        }
    }
    return std::nullopt;
}

std::vector<Witness>
allWitnesses(const Automaton &automaton)
{
    std::vector<Witness> out;
    for (ElementId i = 0; i < automaton.size(); ++i) {
        if (!automaton[i].report)
            continue;
        if (auto witness = witnessFor(automaton, i))
            out.push_back(std::move(*witness));
    }
    return out;
}

} // namespace rapid::automata
