#include "automata/optimizer.h"

#include <algorithm>
#include <array>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/strings.h"

namespace rapid::automata {

namespace {

/**
 * Union-find over element ids tracking which element each id has been
 * merged into.  Signatures are built against resolved roots, so a
 * merge made early in a sweep is visible to every later signature —
 * this is what lets whole duplicate chains collapse in one pass.
 */
struct Remap {
    std::vector<ElementId> to;

    explicit Remap(size_t n) : to(n)
    {
        for (ElementId i = 0; i < n; ++i)
            to[i] = i;
    }

    ElementId
    resolve(ElementId x)
    {
        while (to[x] != x) {
            to[x] = to[to[x]];
            x = to[x];
        }
        return x;
    }

    void
    mergeInto(ElementId victim, ElementId keeper)
    {
        to[resolve(victim)] = resolve(keeper);
    }
};

/**
 * Component union-find with live (post-merge) element counts,
 * enforcing the cross-component weld budget.  Sizes shrink as merges
 * land, so a weld blocked early in a round can succeed later once the
 * parts have deduplicated — the fixpoint retries it.
 */
struct Welder {
    std::vector<ElementId> parent;
    std::vector<size_t> size;
    const OptimizeOptions &options;
    size_t welds = 0;

    Welder(const Automaton &automaton, const OptimizeOptions &opts)
        : parent(automaton.size()), size(automaton.size(), 0),
          options(opts)
    {
        for (const auto &component : automaton.components()) {
            for (ElementId id : component)
                parent[id] = component.front();
            size[component.front()] = component.size();
        }
    }

    ElementId
    find(ElementId x)
    {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    }

    bool
    canJoin(ElementId a, ElementId b)
    {
        ElementId ra = find(a), rb = find(b);
        if (ra == rb)
            return true;
        if (options.acrossComponents)
            return true;
        if (options.weldBudget == 0)
            return false;
        return size[ra] + size[rb] <= options.weldBudget;
    }

    void
    join(ElementId keeper, ElementId victim)
    {
        ElementId ra = find(keeper), rb = find(victim);
        if (ra != rb) {
            parent[rb] = ra;
            size[ra] += size[rb];
            ++welds;
        }
        --size[ra]; // the merge eliminated one element
    }
};

/**
 * Rebuild @p automaton keeping only remap roots that are not dropped,
 * redirecting edge targets through the remap and discarding edges into
 * dropped elements.  Preserves element order and ids.
 */
Automaton
rebuild(const Automaton &automaton, Remap &remap,
        const std::vector<char> &dropped)
{
    std::vector<ElementId> new_index(automaton.size(), kNoElement);
    Automaton out;
    for (ElementId i = 0; i < automaton.size(); ++i) {
        if (remap.resolve(i) != i || dropped[i])
            continue;
        const Element &element = automaton[i];
        ElementId fresh = kNoElement;
        switch (element.kind) {
          case ElementKind::Ste:
            fresh = out.addSte(element.symbols, element.start, element.id);
            break;
          case ElementKind::Counter:
            fresh = out.addCounter(element.target, element.mode,
                                   element.id);
            break;
          case ElementKind::Gate:
            fresh = out.addGate(element.op, element.id);
            break;
        }
        if (element.report)
            out.setReport(fresh, element.reportCode);
        new_index[i] = fresh;
    }
    for (ElementId i = 0; i < automaton.size(); ++i) {
        if (remap.resolve(i) != i || dropped[i])
            continue;
        for (const Edge &edge : automaton[i].outputs) {
            ElementId target = remap.resolve(edge.to);
            if (dropped[target])
                continue;
            internalCheck(new_index[target] != kNoElement,
                          "rebuild: dangling edge");
            out.connect(new_index[i], new_index[target], edge.port);
        }
    }
    return out;
}

/** BFS depth from the start STEs; kNoDepth when unreachable forward. */
constexpr uint32_t kNoDepth = UINT32_MAX;

std::vector<uint32_t>
forwardDepth(const Automaton &automaton)
{
    std::vector<uint32_t> depth(automaton.size(), kNoDepth);
    std::queue<ElementId> frontier;
    for (ElementId i = 0; i < automaton.size(); ++i) {
        const Element &element = automaton[i];
        if (element.kind == ElementKind::Ste &&
            element.start != StartKind::None) {
            depth[i] = 0;
            frontier.push(i);
        }
    }
    while (!frontier.empty()) {
        ElementId node = frontier.front();
        frontier.pop();
        for (const Edge &edge : automaton[node].outputs) {
            if (depth[edge.to] == kNoDepth) {
                depth[edge.to] = depth[node] + 1;
                frontier.push(edge.to);
            }
        }
    }
    return depth;
}

/** Reverse-BFS distance to the nearest reporting element. */
std::vector<uint32_t>
reportDistance(
    const Automaton &automaton,
    const std::vector<std::vector<std::pair<ElementId, Port>>> &fan_in)
{
    std::vector<uint32_t> dist(automaton.size(), kNoDepth);
    std::queue<ElementId> frontier;
    for (ElementId i = 0; i < automaton.size(); ++i) {
        if (automaton[i].report) {
            dist[i] = 0;
            frontier.push(i);
        }
    }
    while (!frontier.empty()) {
        ElementId node = frontier.front();
        frontier.pop();
        for (auto &[src, port] : fan_in[node]) {
            (void)port;
            if (dist[src] == kNoDepth) {
                dist[src] = dist[node] + 1;
                frontier.push(src);
            }
        }
    }
    return dist;
}

/** Element ids sorted by (@p rank ascending, id) for stable sweeps. */
std::vector<ElementId>
orderByRank(size_t n, const std::vector<uint32_t> &rank)
{
    std::vector<ElementId> order(n);
    for (ElementId i = 0; i < n; ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](ElementId a, ElementId b) {
                         return rank[a] < rank[b];
                     });
    return order;
}

/**
 * Canonical key of a neighbour list, resolved through @p remap, with
 * edges to @p self rendered as a SELF marker so self-looping twins
 * still compare equal.  Sorted and deduplicated: resolution can fold
 * several original neighbours into one root.
 */
std::string
linkKey(ElementId self, std::vector<std::pair<ElementId, Port>> items,
        Remap &remap)
{
    for (auto &item : items) {
        ElementId root = remap.resolve(item.first);
        item.first = root == self ? kNoElement : root;
    }
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    std::string key;
    for (auto &[id, port] : items) {
        key += id == kNoElement ? std::string("S")
                                : std::to_string(id);
        key.push_back('/');
        key += std::to_string(static_cast<int>(port));
        key.push_back(';');
    }
    return key;
}

std::vector<std::pair<ElementId, Port>>
edgePairs(const std::vector<Edge> &edges)
{
    std::vector<std::pair<ElementId, Port>> items;
    items.reserve(edges.size());
    for (const Edge &edge : edges)
        items.emplace_back(edge.to, edge.port);
    return items;
}

/** Does @p element feed an AND/NAND gate (operand identity matters)? */
bool
feedsConjunction(const Automaton &automaton, const Element &element)
{
    for (const Edge &edge : element.outputs) {
        const Element &target = automaton[edge.to];
        if (target.kind == ElementKind::Gate &&
            (target.op == GateOp::And || target.op == GateOp::Nand)) {
            return true;
        }
    }
    return false;
}

/** Signature-bucket lookup honouring the weld budget. */
ElementId
findKeeper(std::unordered_map<std::string, std::vector<ElementId>> &map,
           const std::string &signature, ElementId candidate,
           Welder &welder)
{
    auto &bucket = map[signature];
    for (ElementId keeper : bucket) {
        if (welder.canJoin(keeper, candidate))
            return keeper;
    }
    bucket.push_back(candidate);
    return kNoElement;
}

/**
 * Forward hash-cons sweep: merge STEs with equal character class,
 * start kind, report configuration, and resolved predecessor set.
 * Sweeping in depth order makes the merge of a parent visible to the
 * signatures of its children, so duplicate chains collapse in one
 * pass.  Reporting twins (equal flag and code) activate on identical
 * cycles, so merging them preserves the report stream.
 */
size_t
prefixSweep(Automaton &automaton, const OptimizeOptions &options,
            OptimizeStats &stats)
{
    if (automaton.empty())
        return 0;
    auto fan_in = automaton.fanIn();
    Welder welder(automaton, options);
    Remap remap(automaton.size());
    std::vector<char> dropped(automaton.size(), 0);
    std::unordered_map<std::string, std::vector<ElementId>> keepers;
    size_t merged = 0;

    for (ElementId i : orderByRank(automaton.size(),
                                   forwardDepth(automaton))) {
        const Element &element = automaton[i];
        if (element.kind != ElementKind::Ste)
            continue;
        // STEs with no fan-in and no start kind are dead; leave them
        // for removeDeadPaths instead of merging into live elements.
        if (fan_in[i].empty() && element.start == StartKind::None)
            continue;
        std::string signature = strprintf(
            "%d|%d|%s|", static_cast<int>(element.start),
            element.report ? 1 : 0, element.reportCode.c_str());
        signature += element.symbols.str();
        signature.push_back('|');
        signature += linkKey(i, fan_in[i], remap);

        ElementId keeper = findKeeper(keepers, signature, i, welder);
        if (keeper == kNoElement)
            continue;
        // Union fan-out into the keeper; rebuild() redirects fan-in.
        for (const Edge &edge : automaton[i].outputs)
            automaton.connect(keeper, edge.to, edge.port);
        welder.join(keeper, i);
        remap.mergeInto(i, keeper);
        ++merged;
    }
    if (merged)
        automaton = rebuild(automaton, remap, dropped);
    stats.mergedPrefixes += merged;
    stats.weldedComponents += welder.welds;
    return merged;
}

/**
 * Mirrored backward sweep: merge non-reporting STEs with equal class,
 * start kind, and resolved successor set (ports included), walking
 * from the reporters outward so suffix chains collapse in one pass.
 * The merged STE's activation is the union of its parts, which is
 * exactly what every OR-semantics consumer (STE enable, OR/NOT/NOR
 * operand, counter count/reset) observes — AND/NAND operands are the
 * one consumer where the separate signals are load-bearing, so STEs
 * feeding them are excluded.
 */
size_t
suffixSweep(Automaton &automaton, const OptimizeOptions &options,
            OptimizeStats &stats)
{
    if (automaton.empty())
        return 0;
    auto fan_in = automaton.fanIn();
    Welder welder(automaton, options);
    Remap remap(automaton.size());
    std::vector<char> dropped(automaton.size(), 0);
    std::unordered_map<std::string, std::vector<ElementId>> keepers;
    size_t merged = 0;

    for (ElementId i : orderByRank(automaton.size(),
                                   reportDistance(automaton, fan_in))) {
        const Element &element = automaton[i];
        if (element.kind != ElementKind::Ste || element.report)
            continue;
        if (element.outputs.empty())
            continue; // dead end; removeDeadPaths handles it
        if (feedsConjunction(automaton, element))
            continue;
        std::string signature =
            strprintf("%d|", static_cast<int>(element.start));
        signature += element.symbols.str();
        signature.push_back('|');
        signature += linkKey(i, edgePairs(element.outputs), remap);

        ElementId keeper = findKeeper(keepers, signature, i, welder);
        if (keeper == kNoElement)
            continue;
        // Fan-in is redirected by rebuild(); the victim's outputs are
        // duplicates of the keeper's and vanish with it.
        welder.join(keeper, i);
        remap.mergeInto(i, keeper);
        ++merged;
    }
    if (merged)
        automaton = rebuild(automaton, remap, dropped);
    stats.mergedSuffixes += merged;
    stats.weldedComponents += welder.welds;
    return merged;
}

/**
 * Fuse sibling STEs whose resolved fan-in AND fan-out are identical
 * into one STE with the union character class (Fig. 7's OR special
 * case).  Reporting elements never fuse (the union would fire the
 * survivor's name on the sibling's symbols); self-looping STEs never
 * fuse (the union loop would accept cross-sibling repetitions); and
 * AND/NAND consumers exclude their operands as in the suffix sweep.
 */
size_t
fuseSweep(Automaton &automaton, const OptimizeOptions &options,
          OptimizeStats &stats)
{
    if (automaton.empty())
        return 0;
    auto fan_in = automaton.fanIn();
    Welder welder(automaton, options);
    Remap remap(automaton.size());
    std::vector<char> dropped(automaton.size(), 0);
    std::unordered_map<std::string, std::vector<ElementId>> keepers;
    size_t fused = 0;

    for (ElementId i : orderByRank(automaton.size(),
                                   forwardDepth(automaton))) {
        const Element &element = automaton[i];
        if (element.kind != ElementKind::Ste || element.report)
            continue;
        if (fan_in[i].empty() && element.start == StartKind::None)
            continue;
        if (feedsConjunction(automaton, element))
            continue;
        bool self_loop = false;
        for (const Edge &edge : element.outputs)
            self_loop |= remap.resolve(edge.to) == i;
        if (self_loop)
            continue;
        std::string signature =
            strprintf("%d|", static_cast<int>(element.start));
        signature += linkKey(i, fan_in[i], remap);
        signature.push_back('#');
        signature += linkKey(i, edgePairs(element.outputs), remap);

        ElementId keeper = findKeeper(keepers, signature, i, welder);
        if (keeper == kNoElement)
            continue;
        automaton[keeper].symbols |= element.symbols;
        welder.join(keeper, i);
        remap.mergeInto(i, keeper);
        ++fused;
    }
    if (fused)
        automaton = rebuild(automaton, remap, dropped);
    stats.fusedParallel += fused;
    stats.weldedComponents += welder.welds;
    return fused;
}

/**
 * Absorb OR gates over sibling STEs: when every operand of a
 * non-reporting OR gate is a non-reporting STE and all operands share
 * one start kind and one predecessor set (which contains neither the
 * gate nor any operand), the gate computes "did any sibling match" —
 * exactly one STE with the union character class.  The replacement
 * drives the gate's outputs; operands whose only consumer was the
 * gate are dropped with it.  STE signals reach combinational
 * consumers in the same cycle a gate output would, so timing is
 * preserved.
 */
size_t
absorbSweep(Automaton &automaton, const OptimizeOptions &options,
            OptimizeStats &stats)
{
    (void)options; // absorption is intrinsically intra-component
    const size_t n = automaton.size();
    if (n == 0)
        return 0;
    auto fan_in = automaton.fanIn();
    std::vector<char> dropped(n, 0);
    // Each rewrite adds edges the fan-in map above does not know
    // (from and to the fresh STE).  Elements whose fan-in changed are
    // marked touched; gates involving them are skipped this sweep and
    // caught by the next fixpoint round.
    std::vector<char> touched(n, 0);
    size_t absorbed = 0;

    for (ElementId g = 0; g < n; ++g) {
        const Element &gate = automaton[g];
        if (gate.kind != ElementKind::Gate || gate.op != GateOp::Or ||
            gate.report || dropped[g] || touched[g]) {
            continue;
        }
        const auto &operands = fan_in[g];
        if (operands.size() < 2)
            continue;

        std::vector<ElementId> ops;
        bool eligible = true;
        for (auto &[src, port] : operands) {
            (void)port;
            const Element &operand = automaton[src];
            if (operand.kind != ElementKind::Ste || operand.report ||
                dropped[src] || touched[src]) {
                eligible = false;
                break;
            }
            ops.push_back(src);
        }
        if (!eligible)
            continue;

        // One shared start kind and one shared predecessor set, which
        // must not include the gate or any operand (that would tie the
        // rewrite's enable to an element it removes or replaces).
        const StartKind start = automaton[ops.front()].start;
        std::vector<std::pair<ElementId, Port>> preds =
            fan_in[ops.front()];
        std::sort(preds.begin(), preds.end());
        for (ElementId op : ops) {
            if (automaton[op].start != start) {
                eligible = false;
                break;
            }
            auto mine = fan_in[op];
            std::sort(mine.begin(), mine.end());
            if (mine != preds) {
                eligible = false;
                break;
            }
        }
        if (!eligible || (preds.empty() && start == StartKind::None))
            continue;
        for (auto &[src, port] : preds) {
            (void)port;
            if (src == g ||
                std::find(ops.begin(), ops.end(), src) != ops.end()) {
                eligible = false;
                break;
            }
        }
        if (!eligible)
            continue;

        CharSet symbols;
        for (ElementId op : ops)
            symbols |= automaton[op].symbols;
        const std::vector<Edge> gate_outputs = automaton[g].outputs;

        ElementId replacement = automaton.addSte(symbols, start);
        for (auto &[src, port] : preds)
            automaton.connect(src, replacement, port);
        for (const Edge &edge : gate_outputs) {
            automaton.connect(replacement, edge.to, edge.port);
            touched[edge.to] = 1;
        }
        dropped[g] = 1;
        for (ElementId op : ops) {
            bool only_gate = true;
            for (const Edge &edge : automaton[op].outputs)
                only_gate &= edge.to == g;
            if (only_gate)
                dropped[op] = 1;
        }
        ++absorbed;
    }

    if (absorbed) {
        Remap remap(automaton.size());
        dropped.resize(automaton.size(), 0);
        automaton = rebuild(automaton, remap, dropped);
    }
    stats.absorbedGates += absorbed;
    return absorbed;
}

/** Dead-path elimination; see the header for the soundness argument. */
size_t
deadSweep(Automaton &automaton, const OptimizeOptions &options,
          OptimizeStats &stats)
{
    (void)options;
    size_t removed = removeDeadPaths(automaton);
    stats.removedDead += removed;
    return removed;
}

/**
 * Cost-model features (the graph-simplification heuristics): element
 * count, fan-out degree, and charset popcount.  Gates and counters
 * carry a flat width term — they occupy scarcer block resources.
 */
double
designCost(const Automaton &automaton)
{
    double cost = 0.0;
    for (const Element &element : automaton.elements()) {
        cost += 1.0 +
                static_cast<double>(element.outputs.size()) / 8.0;
        cost += element.kind == ElementKind::Ste
                    ? static_cast<double>(element.symbols.count()) /
                          256.0
                    : 0.25;
    }
    return cost;
}

} // namespace

size_t
fuseParallelStes(Automaton &automaton, const OptimizeOptions &options)
{
    OptimizeStats stats;
    return fuseSweep(automaton, options, stats);
}

size_t
mergeCommonPrefixes(Automaton &automaton, const OptimizeOptions &options)
{
    OptimizeStats stats;
    return prefixSweep(automaton, options, stats);
}

size_t
mergeCommonSuffixes(Automaton &automaton, const OptimizeOptions &options)
{
    OptimizeStats stats;
    return suffixSweep(automaton, options, stats);
}

size_t
absorbOrGates(Automaton &automaton, const OptimizeOptions &options)
{
    OptimizeStats stats;
    return absorbSweep(automaton, options, stats);
}

size_t
removeDeadPaths(Automaton &automaton)
{
    const size_t n = automaton.size();
    if (n == 0)
        return 0;
    auto fan_in = automaton.fanIn();

    // --- may-activate: can this element's output ever go high? ------
    // Monotone fixpoint over the activation rules of simulator.cc.
    // NOT/NAND/NOR can fire on *silent* inputs, so they are always
    // may-active.
    std::vector<char> may(n, 0);
    auto evaluate = [&](ElementId i) -> bool {
        const Element &element = automaton[i];
        switch (element.kind) {
          case ElementKind::Ste: {
            if (element.start != StartKind::None)
                return true;
            for (auto &[src, port] : fan_in[i]) {
                (void)port;
                if (may[src])
                    return true;
            }
            return false;
          }
          case ElementKind::Counter: {
            for (auto &[src, port] : fan_in[i]) {
                if (port == Port::Count && may[src])
                    return true;
            }
            return false;
          }
          case ElementKind::Gate: {
            if (element.op != GateOp::And && element.op != GateOp::Or)
                return true;
            bool all = !fan_in[i].empty();
            bool any = false;
            for (auto &[src, port] : fan_in[i]) {
                (void)port;
                any |= may[src] != 0;
                all &= may[src] != 0;
            }
            return element.op == GateOp::And ? all : any;
          }
        }
        return false;
    };
    std::queue<ElementId> work;
    for (ElementId i = 0; i < n; ++i)
        work.push(i);
    while (!work.empty()) {
        ElementId i = work.front();
        work.pop();
        if (may[i] || !evaluate(i))
            continue;
        may[i] = 1;
        for (const Edge &edge : automaton[i].outputs)
            work.push(edge.to);
    }

    // --- reach-report: can this element influence any reporter? -----
    // Skipped (everything "reaches") for report-free designs: those
    // have nothing observable to optimize toward, and erasing them
    // wholesale would surprise ANML round-trip users.
    bool has_reports = false;
    for (ElementId i = 0; i < n; ++i)
        has_reports |= automaton[i].report;
    std::vector<char> reach(n, has_reports ? 0 : 1);
    if (has_reports) {
        std::queue<ElementId> frontier;
        for (ElementId i = 0; i < n; ++i) {
            if (automaton[i].report) {
                reach[i] = 1;
                frontier.push(i);
            }
        }
        while (!frontier.empty()) {
            ElementId node = frontier.front();
            frontier.pop();
            for (auto &[src, port] : fan_in[node]) {
                (void)port;
                if (!reach[src]) {
                    reach[src] = 1;
                    frontier.push(src);
                }
            }
        }
    }

    // --- keep set + validity closure. -------------------------------
    // A kept inverting gate keeps all its operands even when they are
    // never-active (its output depends on their silence); a kept
    // element whose validity inputs all died keeps them as constant-
    // inactive stubs (a counter needs a count input, a gate needs
    // operands).
    std::vector<char> keep(n, 0);
    std::queue<ElementId> closure;
    auto retain = [&](ElementId i) {
        if (!keep[i]) {
            keep[i] = 1;
            closure.push(i);
        }
    };
    for (ElementId i = 0; i < n; ++i) {
        if (may[i] && reach[i])
            retain(i);
    }
    while (!closure.empty()) {
        ElementId i = closure.front();
        closure.pop();
        const Element &element = automaton[i];
        if (element.kind == ElementKind::Gate) {
            bool inverting = element.op == GateOp::Not ||
                             element.op == GateOp::Nand ||
                             element.op == GateOp::Nor;
            // A kept AND that can never fire stays constant-false only
            // while its never-active operands remain.
            bool dead_and = element.op == GateOp::And && !may[i];
            bool any_kept = false;
            for (auto &[src, port] : fan_in[i]) {
                (void)port;
                any_kept |= keep[src] != 0;
            }
            if (inverting || dead_and || !any_kept) {
                for (auto &[src, port] : fan_in[i]) {
                    (void)port;
                    retain(src);
                }
            }
        } else if (element.kind == ElementKind::Counter) {
            bool counted = false;
            for (auto &[src, port] : fan_in[i])
                counted |= port == Port::Count && keep[src];
            if (!counted) {
                for (auto &[src, port] : fan_in[i]) {
                    if (port == Port::Count)
                        retain(src);
                }
            }
        }
    }

    size_t removed = 0;
    std::vector<char> dropped(n, 0);
    for (ElementId i = 0; i < n; ++i) {
        if (!keep[i]) {
            dropped[i] = 1;
            ++removed;
        }
    }
    if (removed) {
        Remap remap(n);
        automaton = rebuild(automaton, remap, dropped);
    }
    return removed;
}

OptimizeStats
optimize(Automaton &automaton, const OptimizeOptions &options)
{
    obs::Span span("optimize");
    OptimizeStats stats;

    struct Pass {
        const char *name;
        size_t (*run)(Automaton &, const OptimizeOptions &,
                      OptimizeStats &);
        /** Decaying rewrite credit; orders passes each round. */
        double yield;
    };
    // Priors reflect typical productivity: prefix sharing dominates
    // multi-pattern designs, suffix sharing mirrors it, fusion and
    // absorption mop up siblings, dead elimination runs on whatever
    // the merges exposed.
    std::array<Pass, 5> passes = {{
        {"prefix", prefixSweep, 4.0},
        {"suffix", suffixSweep, 3.0},
        {"fuse", fuseSweep, 2.0},
        {"absorb", absorbSweep, 1.5},
        {"dead", deadSweep, 1.0},
    }};

    // Depth-ordered sweeps collapse duplicate chains in a single
    // pass, so the fixpoint only has to cover cross-pass cascades:
    // log of the deepest chain plus slack, capped.
    uint32_t max_depth = 0;
    for (uint32_t d : forwardDepth(automaton)) {
        if (d != kNoDepth)
            max_depth = std::max(max_depth, d);
    }
    size_t bound = 4;
    for (uint32_t d = max_depth + 2; d > 1; d /= 2)
        ++bound;
    bound = std::min<size_t>(bound, 16);

    {
        obs::Span fixpoint("optimize.fixpoint");
        double cost = designCost(automaton);
        for (size_t round = 0; round < bound; ++round) {
            ++stats.rounds;
            std::stable_sort(passes.begin(), passes.end(),
                             [](const Pass &a, const Pass &b) {
                                 return a.yield > b.yield;
                             });
            size_t before = stats.total();
            for (Pass &pass : passes) {
                size_t got = pass.run(automaton, options, stats);
                pass.yield = 0.5 * pass.yield +
                             static_cast<double>(got);
            }
            if (stats.total() == before)
                break;
            // Churn guard: rewrites that stopped reducing the cost
            // features are not worth more rounds.
            double now = designCost(automaton);
            if (now >= cost)
                break;
            cost = now;
        }
    }

    if (obs::statsEnabled()) {
        auto &registry = obs::MetricsRegistry::instance();
        registry.counter("optimize.fused_parallel")
            .add(stats.fusedParallel);
        registry.counter("optimize.merged_prefixes")
            .add(stats.mergedPrefixes);
        registry.counter("optimize.merged_suffixes")
            .add(stats.mergedSuffixes);
        registry.counter("optimize.absorbed_gates")
            .add(stats.absorbedGates);
        registry.counter("optimize.removed_dead")
            .add(stats.removedDead);
        registry.counter("optimize.welded_components")
            .add(stats.weldedComponents);
        registry.counter("optimize.rounds").add(stats.rounds);
    }
    return stats;
}

} // namespace rapid::automata
