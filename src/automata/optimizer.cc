#include "automata/optimizer.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/strings.h"

namespace rapid::automata {

namespace {

/** Sorted, canonical rendering of (element, port) pair lists. */
std::string
portListKey(std::vector<std::pair<ElementId, Port>> items)
{
    std::sort(items.begin(), items.end());
    std::string key;
    for (auto &[id, port] : items) {
        key += std::to_string(id);
        key.push_back('/');
        key += std::to_string(static_cast<int>(port));
        key.push_back(';');
    }
    return key;
}

std::string
edgeListKey(const std::vector<Edge> &edges)
{
    std::vector<std::pair<ElementId, Port>> items;
    items.reserve(edges.size());
    for (const Edge &edge : edges)
        items.emplace_back(edge.to, edge.port);
    return portListKey(std::move(items));
}

/**
 * Rebuild @p automaton keeping only elements with remap[i] == i and
 * redirecting edges through the remap.  Preserves element order and ids.
 */
Automaton
rebuild(const Automaton &automaton, const std::vector<ElementId> &remap)
{
    // Resolve chains (a merged into b merged into c).
    std::vector<ElementId> resolved(remap);
    for (ElementId i = 0; i < resolved.size(); ++i) {
        ElementId root = i;
        while (resolved[root] != root)
            root = resolved[root];
        resolved[i] = root;
    }

    std::vector<ElementId> new_index(automaton.size(), kNoElement);
    Automaton out;
    for (ElementId i = 0; i < automaton.size(); ++i) {
        if (resolved[i] != i)
            continue;
        const Element &element = automaton[i];
        ElementId fresh = kNoElement;
        switch (element.kind) {
          case ElementKind::Ste:
            fresh = out.addSte(element.symbols, element.start, element.id);
            break;
          case ElementKind::Counter:
            fresh = out.addCounter(element.target, element.mode,
                                   element.id);
            break;
          case ElementKind::Gate:
            fresh = out.addGate(element.op, element.id);
            break;
        }
        if (element.report)
            out.setReport(fresh, element.reportCode);
        new_index[i] = fresh;
    }
    for (ElementId i = 0; i < automaton.size(); ++i) {
        if (resolved[i] != i)
            continue;
        for (const Edge &edge : automaton[i].outputs) {
            ElementId target = new_index[resolved[edge.to]];
            internalCheck(target != kNoElement, "rebuild: dangling edge");
            out.connect(new_index[i], target, edge.port);
        }
    }
    return out;
}

/**
 * Component id per element.  Rewrites must stay within one weakly-
 * connected component: merging identical start STEs of *separate*
 * automata (e.g. the per-instance window guards of a multi-pattern
 * design) would weld the instances into one placement component,
 * which the AP's per-automaton placement model forbids.
 */
std::vector<size_t>
componentIds(const Automaton &automaton)
{
    std::vector<size_t> ids(automaton.size(), 0);
    auto components = automaton.components();
    for (size_t c = 0; c < components.size(); ++c) {
        for (ElementId id : components[c])
            ids[id] = c;
    }
    return ids;
}

} // namespace

size_t
fuseParallelStes(Automaton &automaton, const OptimizeOptions &options)
{
    auto fan_in = automaton.fanIn();
    std::vector<size_t> component;
    if (!options.acrossComponents)
        component = componentIds(automaton);
    std::unordered_map<std::string, ElementId> keeper_by_signature;
    std::vector<ElementId> remap(automaton.size());
    size_t fused = 0;

    for (ElementId i = 0; i < automaton.size(); ++i)
        remap[i] = i;

    for (ElementId i = 0; i < automaton.size(); ++i) {
        const Element &element = automaton[i];
        if (element.kind != ElementKind::Ste)
            continue;
        std::string signature = strprintf(
            "%zu|%d|%d|%s|", component.empty() ? 0 : component[i],
            static_cast<int>(element.start),
            element.report ? 1 : 0, element.reportCode.c_str());
        signature += portListKey(fan_in[i]);
        signature.push_back('#');
        signature += edgeListKey(element.outputs);

        auto [it, inserted] = keeper_by_signature.emplace(signature, i);
        if (!inserted) {
            automaton[it->second].symbols |= element.symbols;
            remap[i] = it->second;
            ++fused;
        }
    }

    if (fused)
        automaton = rebuild(automaton, remap);
    return fused;
}

size_t
mergeCommonPrefixes(Automaton &automaton, const OptimizeOptions &options)
{
    auto fan_in = automaton.fanIn();
    std::vector<size_t> component;
    if (!options.acrossComponents)
        component = componentIds(automaton);
    std::unordered_map<std::string, ElementId> keeper_by_signature;
    std::vector<ElementId> remap(automaton.size());
    size_t merged = 0;

    for (ElementId i = 0; i < automaton.size(); ++i)
        remap[i] = i;

    for (ElementId i = 0; i < automaton.size(); ++i) {
        const Element &element = automaton[i];
        if (element.kind != ElementKind::Ste)
            continue;
        // STEs with no fan-in and no start kind are dead; skip them so
        // they do not get merged into live start elements.
        if (fan_in[i].empty() && element.start == StartKind::None)
            continue;
        std::string signature = strprintf(
            "%zu|%d|%d|%s|", component.empty() ? 0 : component[i],
            static_cast<int>(element.start),
            element.report ? 1 : 0, element.reportCode.c_str());
        signature += element.symbols.str();
        signature.push_back('|');
        signature += portListKey(fan_in[i]);

        auto [it, inserted] = keeper_by_signature.emplace(signature, i);
        if (!inserted) {
            // Union fan-out into the keeper.
            for (const Edge &edge : element.outputs)
                automaton.connect(it->second, edge.to, edge.port);
            remap[i] = it->second;
            ++merged;
        }
    }

    if (merged)
        automaton = rebuild(automaton, remap);
    return merged;
}

OptimizeStats
optimize(Automaton &automaton, const OptimizeOptions &options)
{
    obs::Span span("optimize");
    OptimizeStats stats;
    // Prefix merging exposes new parallel-fusion opportunities and vice
    // versa; iterate to a (bounded) fixed point.
    {
        obs::Span fixpoint("optimize.fixpoint");
        for (int round = 0; round < 16; ++round) {
            size_t before = stats.total();
            stats.mergedPrefixes +=
                mergeCommonPrefixes(automaton, options);
            stats.fusedParallel +=
                fuseParallelStes(automaton, options);
            if (stats.total() == before)
                break;
        }
    }
    {
        obs::Span dead("optimize.dead");
        stats.removedDead += automaton.removeDeadElements();
    }
    if (obs::statsEnabled()) {
        auto &registry = obs::MetricsRegistry::instance();
        registry.counter("optimize.fused_parallel")
            .add(stats.fusedParallel);
        registry.counter("optimize.merged_prefixes")
            .add(stats.mergedPrefixes);
        registry.counter("optimize.removed_dead")
            .add(stats.removedDead);
    }
    return stats;
}

} // namespace rapid::automata
