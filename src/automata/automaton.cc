#include "automata/automaton.h"

#include <algorithm>
#include <queue>

#include "support/error.h"
#include "support/strings.h"

namespace rapid::automata {

const char *
kindName(ElementKind kind)
{
    switch (kind) {
      case ElementKind::Ste:
        return "ste";
      case ElementKind::Counter:
        return "counter";
      case ElementKind::Gate:
        return "gate";
    }
    return "?";
}

const char *
gateOpName(GateOp op)
{
    switch (op) {
      case GateOp::And:
        return "and";
      case GateOp::Or:
        return "or";
      case GateOp::Not:
        return "inverter";
      case GateOp::Nand:
        return "nand";
      case GateOp::Nor:
        return "nor";
    }
    return "?";
}

std::string
Automaton::freshId(const char *stem)
{
    std::string id;
    do {
        id = strprintf("__%s%llu", stem,
                       static_cast<unsigned long long>(_nextAuto++));
    } while (_byId.count(id));
    return id;
}

ElementId
Automaton::addSte(const CharSet &symbols, StartKind start,
                  const std::string &id)
{
    Element element;
    element.kind = ElementKind::Ste;
    element.symbols = symbols;
    element.start = start;
    element.id = id.empty() ? freshId("ste") : id;
    internalCheck(!_byId.count(element.id),
                  "duplicate element id: " + element.id);
    ElementId index = static_cast<ElementId>(_elements.size());
    _byId.emplace(element.id, index);
    _elements.push_back(std::move(element));
    return index;
}

ElementId
Automaton::addCounter(uint32_t target, CounterMode mode,
                      const std::string &id)
{
    Element element;
    element.kind = ElementKind::Counter;
    element.target = target;
    element.mode = mode;
    element.id = id.empty() ? freshId("cnt") : id;
    internalCheck(!_byId.count(element.id),
                  "duplicate element id: " + element.id);
    ElementId index = static_cast<ElementId>(_elements.size());
    _byId.emplace(element.id, index);
    _elements.push_back(std::move(element));
    return index;
}

ElementId
Automaton::addGate(GateOp op, const std::string &id)
{
    Element element;
    element.kind = ElementKind::Gate;
    element.op = op;
    element.id = id.empty() ? freshId("gate") : id;
    internalCheck(!_byId.count(element.id),
                  "duplicate element id: " + element.id);
    ElementId index = static_cast<ElementId>(_elements.size());
    _byId.emplace(element.id, index);
    _elements.push_back(std::move(element));
    return index;
}

void
Automaton::connect(ElementId from, ElementId to, Port port)
{
    internalCheck(from < _elements.size() && to < _elements.size(),
                  "connect: element index out of range");
    const Element &target = _elements[to];
    if (port == Port::Count || port == Port::Reset) {
        internalCheck(target.kind == ElementKind::Counter,
                      "count/reset port on non-counter element " +
                          target.id);
    } else {
        internalCheck(target.kind != ElementKind::Counter,
                      "activate port on counter " + target.id +
                          " (use Count or Reset)");
    }
    Edge edge{to, port};
    auto &outputs = _elements[from].outputs;
    if (std::find(outputs.begin(), outputs.end(), edge) == outputs.end())
        outputs.push_back(edge);
}

void
Automaton::setReport(ElementId element, const std::string &code)
{
    internalCheck(element < _elements.size(), "setReport: bad element");
    _elements[element].report = true;
    _elements[element].reportCode = code;
}

void
Automaton::clearReport(ElementId element)
{
    internalCheck(element < _elements.size(), "clearReport: bad element");
    _elements[element].report = false;
    _elements[element].reportCode.clear();
}

ElementId
Automaton::findId(const std::string &id) const
{
    auto it = _byId.find(id);
    return it == _byId.end() ? kNoElement : it->second;
}

AutomatonStats
Automaton::stats() const
{
    AutomatonStats out;
    for (const Element &element : _elements) {
        switch (element.kind) {
          case ElementKind::Ste:
            ++out.stes;
            if (element.start != StartKind::None)
                ++out.startStes;
            break;
          case ElementKind::Counter:
            ++out.counters;
            break;
          case ElementKind::Gate:
            ++out.gates;
            break;
        }
        if (element.report)
            ++out.reporting;
        out.edges += element.outputs.size();
    }
    return out;
}

std::vector<std::vector<std::pair<ElementId, Port>>>
Automaton::fanIn() const
{
    std::vector<std::vector<std::pair<ElementId, Port>>> in(
        _elements.size());
    for (ElementId from = 0; from < _elements.size(); ++from) {
        for (const Edge &edge : _elements[from].outputs)
            in[edge.to].emplace_back(from, edge.port);
    }
    return in;
}

void
Automaton::validate() const
{
    auto in = fanIn();
    for (ElementId i = 0; i < _elements.size(); ++i) {
        const Element &element = _elements[i];
        switch (element.kind) {
          case ElementKind::Ste:
            if (element.symbols.empty()) {
                throw CompileError("STE " + element.id +
                                   " has an empty character class");
            }
            break;
          case ElementKind::Counter: {
            if (element.target == 0) {
                throw CompileError("counter " + element.id +
                                   " has target 0");
            }
            bool has_count = false;
            for (auto &[src, port] : in[i]) {
                (void)src;
                if (port == Port::Count)
                    has_count = true;
            }
            if (!has_count) {
                throw CompileError("counter " + element.id +
                                   " has no count input");
            }
            break;
          }
          case ElementKind::Gate: {
            size_t operands = in[i].size();
            if (operands == 0) {
                throw CompileError("gate " + element.id +
                                   " has no operands");
            }
            if (element.op == GateOp::Not && operands != 1) {
                throw CompileError("inverter " + element.id +
                                   " must have exactly one operand");
            }
            break;
          }
        }
        for (const Edge &edge : element.outputs) {
            if (edge.to >= _elements.size()) {
                throw CompileError("edge from " + element.id +
                                   " targets a missing element");
            }
        }
    }

    // The combinational subnetwork (gates + counters) must be acyclic;
    // STEs break cycles because their activation crosses a symbol cycle.
    // Kahn's algorithm restricted to combinational nodes.
    std::vector<int> degree(_elements.size(), 0);
    for (ElementId i = 0; i < _elements.size(); ++i) {
        if (_elements[i].kind == ElementKind::Ste)
            continue;
        for (auto &[src, port] : in[i]) {
            (void)port;
            if (_elements[src].kind != ElementKind::Ste)
                ++degree[i];
        }
    }
    std::queue<ElementId> ready;
    size_t combinational = 0;
    for (ElementId i = 0; i < _elements.size(); ++i) {
        if (_elements[i].kind == ElementKind::Ste)
            continue;
        ++combinational;
        if (degree[i] == 0)
            ready.push(i);
    }
    size_t processed = 0;
    while (!ready.empty()) {
        ElementId node = ready.front();
        ready.pop();
        ++processed;
        for (const Edge &edge : _elements[node].outputs) {
            if (_elements[edge.to].kind == ElementKind::Ste)
                continue;
            if (--degree[edge.to] == 0)
                ready.push(edge.to);
        }
    }
    if (processed != combinational) {
        throw CompileError(
            "combinational cycle through gates/counters detected");
    }
}

ElementId
Automaton::merge(const Automaton &other, const std::string &prefix)
{
    const ElementId offset = static_cast<ElementId>(_elements.size());
    _elements.reserve(_elements.size() + other._elements.size());
    for (const Element &element : other._elements) {
        Element copy = element;
        copy.id = prefix + element.id;
        internalCheck(!_byId.count(copy.id),
                      "merge would duplicate id: " + copy.id);
        for (Edge &edge : copy.outputs)
            edge.to += offset;
        _byId.emplace(copy.id, static_cast<ElementId>(_elements.size()));
        _elements.push_back(std::move(copy));
    }
    return offset;
}

std::vector<std::vector<ElementId>>
Automaton::components() const
{
    // Union-find over undirected connectivity.
    std::vector<ElementId> parent(_elements.size());
    for (ElementId i = 0; i < parent.size(); ++i)
        parent[i] = i;
    auto find = [&](ElementId x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    auto unite = [&](ElementId a, ElementId b) {
        a = find(a);
        b = find(b);
        if (a != b)
            parent[b] = a;
    };
    for (ElementId from = 0; from < _elements.size(); ++from) {
        for (const Edge &edge : _elements[from].outputs)
            unite(from, edge.to);
    }
    std::unordered_map<ElementId, size_t> slot;
    std::vector<std::vector<ElementId>> out;
    for (ElementId i = 0; i < _elements.size(); ++i) {
        ElementId root = find(i);
        auto it = slot.find(root);
        if (it == slot.end()) {
            slot.emplace(root, out.size());
            out.emplace_back();
            out.back().push_back(i);
        } else {
            out[it->second].push_back(i);
        }
    }
    return out;
}

size_t
Automaton::removeDeadElements()
{
    // Reachability from start STEs over activation edges, treating
    // combinational fan-in as reverse reachability requirements too:
    // a gate is live when any of its inputs is live; a counter likewise.
    std::vector<char> live(_elements.size(), 0);
    std::queue<ElementId> frontier;
    for (ElementId i = 0; i < _elements.size(); ++i) {
        if (_elements[i].kind == ElementKind::Ste &&
            _elements[i].start != StartKind::None) {
            live[i] = 1;
            frontier.push(i);
        }
    }
    while (!frontier.empty()) {
        ElementId node = frontier.front();
        frontier.pop();
        for (const Edge &edge : _elements[node].outputs) {
            if (!live[edge.to]) {
                live[edge.to] = 1;
                frontier.push(edge.to);
            }
        }
    }

    size_t removed = 0;
    for (char flag : live) {
        if (!flag)
            ++removed;
    }
    if (removed == 0)
        return 0;

    std::vector<ElementId> remap(_elements.size(), kNoElement);
    std::vector<Element> kept;
    kept.reserve(_elements.size() - removed);
    for (ElementId i = 0; i < _elements.size(); ++i) {
        if (live[i]) {
            remap[i] = static_cast<ElementId>(kept.size());
            kept.push_back(std::move(_elements[i]));
        }
    }
    for (Element &element : kept) {
        std::vector<Edge> outputs;
        outputs.reserve(element.outputs.size());
        for (Edge edge : element.outputs) {
            if (remap[edge.to] != kNoElement) {
                edge.to = remap[edge.to];
                outputs.push_back(edge);
            }
        }
        element.outputs = std::move(outputs);
    }
    _elements = std::move(kept);
    _byId.clear();
    for (ElementId i = 0; i < _elements.size(); ++i)
        _byId.emplace(_elements[i].id, i);
    return removed;
}

} // namespace rapid::automata
