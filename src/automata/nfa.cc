#include "automata/nfa.h"

#include <queue>

#include "support/error.h"
#include "support/strings.h"

namespace rapid::automata {

StateId
Nfa::addState(bool accepting)
{
    _transitions.emplace_back();
    _epsilons.emplace_back();
    _accepting.push_back(accepting ? 1 : 0);
    return static_cast<StateId>(_accepting.size() - 1);
}

void
Nfa::addTransition(StateId from, const CharSet &label, StateId to)
{
    internalCheck(from < size() && to < size(), "addTransition: bad state");
    internalCheck(!label.empty(), "addTransition: empty label");
    _transitions[from].push_back(Transition{label, to});
}

void
Nfa::addEpsilon(StateId from, StateId to)
{
    internalCheck(from < size() && to < size(), "addEpsilon: bad state");
    _epsilons[from].push_back(to);
}

void
Nfa::setAccepting(StateId state, bool accepting)
{
    internalCheck(state < size(), "setAccepting: bad state");
    _accepting[state] = accepting ? 1 : 0;
}

void
Nfa::setInitial(StateId state)
{
    internalCheck(state < size(), "setInitial: bad state");
    _initial = state;
}

std::vector<char>
Nfa::epsilonClosure(StateId state) const
{
    std::vector<char> in_closure(size(), 0);
    std::queue<StateId> frontier;
    in_closure[state] = 1;
    frontier.push(state);
    while (!frontier.empty()) {
        StateId current = frontier.front();
        frontier.pop();
        for (StateId next : _epsilons[current]) {
            if (!in_closure[next]) {
                in_closure[next] = 1;
                frontier.push(next);
            }
        }
    }
    return in_closure;
}

std::vector<uint64_t>
Nfa::matchEnds(std::string_view input) const
{
    std::vector<uint64_t> ends;
    if (size() == 0)
        return ends;

    std::vector<char> active = epsilonClosure(_initial);
    std::vector<char> next(size());
    for (uint64_t offset = 0; offset < input.size(); ++offset) {
        auto symbol = static_cast<unsigned char>(input[offset]);
        std::fill(next.begin(), next.end(), 0);
        for (StateId state = 0; state < size(); ++state) {
            if (!active[state])
                continue;
            for (const Transition &t : _transitions[state]) {
                if (!t.label.test(symbol) || next[t.to])
                    continue;
                auto closure = epsilonClosure(t.to);
                for (StateId s = 0; s < size(); ++s)
                    next[s] |= closure[s];
            }
        }
        active = next;
        for (StateId state = 0; state < size(); ++state) {
            if (active[state] && _accepting[state]) {
                ends.push_back(offset);
                break;
            }
        }
    }
    return ends;
}

bool
Nfa::accepts(std::string_view input) const
{
    if (size() == 0)
        return false;
    auto ends = matchEnds(input);
    if (input.empty()) {
        auto closure = epsilonClosure(_initial);
        for (StateId state = 0; state < size(); ++state) {
            if (closure[state] && _accepting[state])
                return true;
        }
        return false;
    }
    return !ends.empty() && ends.back() == input.size() - 1;
}

Automaton
Nfa::toHomogeneous(StartKind start_kind,
                   const std::string &id_prefix) const
{
    internalCheck(size() > 0, "toHomogeneous: empty NFA");

    // Effective (epsilon-free) transition relation: state -> transitions
    // reachable through its closure.  Effective acceptance likewise.
    std::vector<std::vector<Transition>> effective(size());
    std::vector<char> accepts_effective(size(), 0);
    for (StateId state = 0; state < size(); ++state) {
        auto closure = epsilonClosure(state);
        for (StateId member = 0; member < size(); ++member) {
            if (!closure[member])
                continue;
            if (_accepting[member])
                accepts_effective[state] = 1;
            for (const Transition &t : _transitions[member])
                effective[state].push_back(t);
        }
    }

    if (accepts_effective[_initial]) {
        throw CompileError(
            "NFA accepts the empty string; homogeneous automata report "
            "only on symbol consumption");
    }

    // One STE per effective transition (Fig. 5 construction).
    Automaton out;
    std::vector<std::vector<ElementId>> ste_of(size());
    uint64_t serial = 0;
    for (StateId state = 0; state < size(); ++state) {
        ste_of[state].reserve(effective[state].size());
        for (const Transition &t : effective[state]) {
            StartKind kind =
                state == _initial ? start_kind : StartKind::None;
            ElementId ste = out.addSte(
                t.label, kind,
                strprintf("%s%llu", id_prefix.c_str(),
                          static_cast<unsigned long long>(serial++)));
            if (accepts_effective[t.to])
                out.setReport(ste);
            ste_of[state].push_back(ste);
        }
    }
    for (StateId state = 0; state < size(); ++state) {
        for (size_t i = 0; i < effective[state].size(); ++i) {
            StateId target = effective[state][i].to;
            for (ElementId next : ste_of[target])
                out.connect(ste_of[state][i], next);
        }
    }
    return out;
}

} // namespace rapid::automata
