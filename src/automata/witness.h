/**
 * @file
 * Witness-input generation — the paper's §8 future-work debugging aid
 * ("tools aiding developers to generate short input sequences to test
 * corner cases of their applications").
 *
 * Given a design, witnessFor() synthesizes a shortest input string that
 * makes a chosen reporting element fire, by breadth-first search over
 * the STE activation graph (each step picks one concrete symbol from an
 * STE's character class).  Counters are handled by unrolling: a path
 * through a counter's count port must be traversed `target` times
 * before the counter's output continues, which the search approximates
 * by repeating the shortest count-pulse cycle.
 *
 * Boolean AND gates require several simultaneously active inputs and
 * are not covered by single-path search; witnesses are generated for
 * designs whose reports are reachable through STEs, OR gates, and
 * counters (ANDs are reported as unsupported).
 */
#ifndef RAPID_AUTOMATA_WITNESS_H
#define RAPID_AUTOMATA_WITNESS_H

#include <optional>
#include <string>
#include <vector>

#include "automata/automaton.h"

namespace rapid::automata {

/** A generated test input for one reporting element. */
struct Witness {
    ElementId element = kNoElement;
    /** Input string that triggers the report. */
    std::string input;
    /** Offset at which the report fires (== input.size() - 1). */
    uint64_t offset = 0;
};

/**
 * Shortest witness for @p element, or nullopt when the element is
 * unreachable by single-path search (dead code or AND-gated).
 */
std::optional<Witness> witnessFor(const Automaton &automaton,
                                  ElementId element);

/** Witnesses for every reporting element (unreachable ones omitted). */
std::vector<Witness> allWitnesses(const Automaton &automaton);

} // namespace rapid::automata

#endif // RAPID_AUTOMATA_WITNESS_H
