/**
 * @file
 * Classic (edge-labelled) NFAs and conversion to homogeneous form.
 *
 * The AP executes *homogeneous* NFAs: every incoming transition to a
 * state carries the same label, so labels move onto the states (STEs).
 * This module provides the textbook NFA representation with
 * epsilon-transitions, a reference simulator, and the conversion of
 * Fig. 5 / §4 of the paper (epsilon removal followed by per-transition
 * state splitting).  The regex front end builds on it.
 */
#ifndef RAPID_AUTOMATA_NFA_H
#define RAPID_AUTOMATA_NFA_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "automata/automaton.h"
#include "automata/charset.h"

namespace rapid::automata {

/** Index of a classic-NFA state. */
using StateId = uint32_t;

/** A classic NFA with CharSet-labelled edges and epsilon edges. */
class Nfa {
  public:
    /** Add a state; the first state added becomes the initial state. */
    StateId addState(bool accepting = false);

    /** Add a transition consuming one symbol of @p label. */
    void addTransition(StateId from, const CharSet &label, StateId to);

    /** Add an epsilon transition (no symbol consumed). */
    void addEpsilon(StateId from, StateId to);

    void setAccepting(StateId state, bool accepting = true);
    void setInitial(StateId state);

    size_t size() const { return _accepting.size(); }
    StateId initial() const { return _initial; }
    bool accepting(StateId state) const { return _accepting[state]; }

    /**
     * Reference subset simulation.
     *
     * @return the 0-based offsets at which an accepting state is active
     * immediately after consuming the symbol at that offset — i.e. the
     * AP's relaxed "report any time an accept state is active"
     * semantics.
     */
    std::vector<uint64_t> matchEnds(std::string_view input) const;

    /** Classic whole-string acceptance. */
    bool accepts(std::string_view input) const;

    /**
     * Convert to a behaviourally equivalent homogeneous automaton.
     *
     * Epsilon transitions are removed by closure; each surviving
     * transition becomes one STE labelled with the transition's symbol
     * set (the Fig. 5 construction).  Transitions leaving the initial
     * state's closure produce STEs with @p start_kind.  STEs whose
     * target state is accepting report.
     *
     * Matching the empty string cannot be expressed (the AP reports only
     * on symbol consumption); conversion of such NFAs throws
     * CompileError.
     */
    Automaton toHomogeneous(StartKind start_kind = StartKind::StartOfData,
                            const std::string &id_prefix = "q") const;

  private:
    struct Transition {
        CharSet label;
        StateId to;
    };

    std::vector<char> epsilonClosure(StateId state) const;

    std::vector<std::vector<Transition>> _transitions;
    std::vector<std::vector<StateId>> _epsilons;
    std::vector<char> _accepting;
    StateId _initial = 0;
};

} // namespace rapid::automata

#endif // RAPID_AUTOMATA_NFA_H
