#include "automata/match_kernels.h"

#include <cstdlib>

#include "support/error.h"

#if defined(__x86_64__) || defined(__i386__)
#define RAPID_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace rapid::automata::kernels {

namespace {

void
andRowsBaseline(uint64_t *dst, const uint64_t *a, const uint64_t *b,
                size_t words)
{
    for (size_t i = 0; i < words; ++i)
        dst[i] = a[i] & b[i];
}

void
orIntoBaseline(uint64_t *dst, const uint64_t *src, size_t words)
{
    for (size_t i = 0; i < words; ++i)
        dst[i] |= src[i];
}

constexpr Ops kBaseline = {"baseline", andRowsBaseline, orIntoBaseline};

#ifdef RAPID_KERNELS_X86

// The rows BatchSimulator hands these kernels come from std::vector
// storage with no alignment promise beyond alignof(uint64_t), so every
// vector access is an unaligned load/store.

__attribute__((target("sse2"))) void
andRowsSse2(uint64_t *dst, const uint64_t *a, const uint64_t *b,
            size_t words)
{
    size_t i = 0;
    for (; i + 2 <= words; i += 2) {
        const __m128i va =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(a + i));
        const __m128i vb =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(b + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         _mm_and_si128(va, vb));
    }
    for (; i < words; ++i)
        dst[i] = a[i] & b[i];
}

__attribute__((target("sse2"))) void
orIntoSse2(uint64_t *dst, const uint64_t *src, size_t words)
{
    size_t i = 0;
    for (; i + 2 <= words; i += 2) {
        const __m128i vd =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(dst + i));
        const __m128i vs = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         _mm_or_si128(vd, vs));
    }
    for (; i < words; ++i)
        dst[i] |= src[i];
}

constexpr Ops kSse2 = {"sse2", andRowsSse2, orIntoSse2};

__attribute__((target("avx2"))) void
andRowsAvx2(uint64_t *dst, const uint64_t *a, const uint64_t *b,
            size_t words)
{
    size_t i = 0;
    for (; i + 4 <= words; i += 4) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_and_si256(va, vb));
    }
    for (; i < words; ++i)
        dst[i] = a[i] & b[i];
}

__attribute__((target("avx2"))) void
orIntoAvx2(uint64_t *dst, const uint64_t *src, size_t words)
{
    size_t i = 0;
    for (; i + 4 <= words; i += 4) {
        const __m256i vd = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        const __m256i vs = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_or_si256(vd, vs));
    }
    for (; i < words; ++i)
        dst[i] |= src[i];
}

constexpr Ops kAvx2 = {"avx2", andRowsAvx2, orIntoAvx2};

#endif // RAPID_KERNELS_X86

bool
cpuSupports(const Ops &ops)
{
#ifdef RAPID_KERNELS_X86
    if (ops.name == kSse2.name)
        return __builtin_cpu_supports("sse2");
    if (ops.name == kAvx2.name)
        return __builtin_cpu_supports("avx2");
#endif
    return ops.name == kBaseline.name;
}

/** Every built variant, portable first, fastest last. */
const Ops *
allVariants(size_t &count)
{
#ifdef RAPID_KERNELS_X86
    static const Ops variants[] = {kBaseline, kSse2, kAvx2};
#else
    static const Ops variants[] = {kBaseline};
#endif
    count = sizeof(variants) / sizeof(variants[0]);
    return variants;
}

const Ops &
bestSupported()
{
    size_t count = 0;
    const Ops *variants = allVariants(count);
    const Ops *best = &variants[0];
    for (size_t i = 0; i < count; ++i) {
        if (cpuSupports(variants[i]))
            best = &variants[i];
    }
    return *best;
}

} // namespace

const Ops *
byName(const std::string &name)
{
    size_t count = 0;
    const Ops *variants = allVariants(count);
    for (size_t i = 0; i < count; ++i) {
        if (name == variants[i].name)
            return cpuSupports(variants[i]) ? &variants[i] : nullptr;
    }
    return nullptr;
}

std::vector<std::string>
available()
{
    size_t count = 0;
    const Ops *variants = allVariants(count);
    std::vector<std::string> names;
    for (size_t i = 0; i < count; ++i) {
        if (cpuSupports(variants[i]))
            names.push_back(variants[i].name);
    }
    return names;
}

const Ops &
active()
{
    // Re-read the environment every call: selection happens once per
    // engine construction, and the parity tests rely on toggling
    // RAPID_KERNEL between constructions.
    const char *forced = std::getenv("RAPID_KERNEL");
    if (forced == nullptr || *forced == '\0')
        return bestSupported();
    const Ops *ops = byName(forced);
    if (ops == nullptr) {
        throw Error(std::string("RAPID_KERNEL='") + forced +
                    "' is unknown or unsupported on this CPU "
                    "(expected one of: baseline, sse2, avx2)");
    }
    return *ops;
}

const Ops &
select(size_t words)
{
    const char *forced = std::getenv("RAPID_KERNEL");
    if (forced != nullptr && *forced != '\0')
        return active();
    // A vector variant must run at least two main-loop iterations on
    // every row to beat the scalar loop; below that the setup and tail
    // handling dominate (measured: avx2 lost to baseline on 5-word
    // rows).  avx2 steps 4 words, sse2 steps 2.
    const Ops *choice = &kBaseline;
#ifdef RAPID_KERNELS_X86
    if (words >= 8 && cpuSupports(kAvx2))
        choice = &kAvx2;
    else if (words >= 2 && cpuSupports(kSse2))
        choice = &kSse2;
#else
    (void)words;
#endif
    return *choice;
}

} // namespace rapid::automata::kernels
