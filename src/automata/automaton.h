/**
 * @file
 * The Automaton container: a homogeneous NFA with counters and gates.
 *
 * This is the central IR of the toolchain.  The RAPID compiler and the
 * regex front end produce Automaton values; the ANML module serializes
 * them; the simulator executes them; the AP placement engine maps them
 * onto device resources.
 */
#ifndef RAPID_AUTOMATA_AUTOMATON_H
#define RAPID_AUTOMATA_AUTOMATON_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "automata/element.h"

namespace rapid::automata {

/** Aggregate element counts for a design. */
struct AutomatonStats {
    size_t stes = 0;
    size_t counters = 0;
    size_t gates = 0;
    size_t edges = 0;
    size_t reporting = 0;
    size_t startStes = 0;

    size_t total() const { return stes + counters + gates; }
};

/**
 * A mutable homogeneous-NFA design.
 *
 * Elements are identified by dense indices (ElementId) assigned in
 * creation order; ids (names) must be unique and are auto-generated when
 * omitted.  The builder API performs local sanity checks; validate()
 * performs whole-graph checks and must pass before simulation or
 * placement.
 */
class Automaton {
  public:
    Automaton() = default;

    /// @name Construction
    /// @{

    /** Add an STE with the given character class and start behaviour. */
    ElementId addSte(const CharSet &symbols,
                     StartKind start = StartKind::None,
                     const std::string &id = "");

    /** Add a saturating counter with threshold @p target. */
    ElementId addCounter(uint32_t target,
                         CounterMode mode = CounterMode::Latch,
                         const std::string &id = "");

    /** Add a boolean gate. */
    ElementId addGate(GateOp op, const std::string &id = "");

    /**
     * Connect @p from to @p to's input @p port.
     *
     * Duplicate edges are ignored.  @throws InternalError for port/kind
     * mismatches (e.g. Count port on an STE).
     */
    void connect(ElementId from, ElementId to, Port port = Port::Activate);

    /** Mark an element as reporting, with optional report metadata. */
    void setReport(ElementId element, const std::string &code = "");

    /** Clear the reporting flag. */
    void clearReport(ElementId element);

    /// @}

    /// @name Access
    /// @{

    size_t size() const { return _elements.size(); }
    bool empty() const { return _elements.empty(); }

    const Element &operator[](ElementId i) const { return _elements[i]; }
    Element &operator[](ElementId i) { return _elements[i]; }

    const std::vector<Element> &elements() const { return _elements; }

    /** Look up an element by name; kNoElement when absent. */
    ElementId findId(const std::string &id) const;

    /** Element counts. */
    AutomatonStats stats() const;

    /**
     * Incoming edges per element (recomputed on call).
     *
     * Entry i lists (source, port) pairs targeting element i.
     */
    std::vector<std::vector<std::pair<ElementId, Port>>> fanIn() const;

    /// @}

    /// @name Whole-graph operations
    /// @{

    /**
     * Verify structural invariants.
     *
     * Checks: unique ids; STEs have non-empty classes; counters have a
     * positive target, at least one Count input and no Activate inputs;
     * gates have operands (exactly one for NOT); the combinational
     * subgraph (gates and counters) is acyclic; edge targets are in
     * range.
     *
     * @throws CompileError describing the first violation.
     */
    void validate() const;

    /**
     * Append a copy of @p other, prefixing its element ids.
     *
     * Used to assemble multi-instance designs (e.g. one automaton per
     * network macro instantiation, or tessellation tiles).
     *
     * @return the ElementId offset added to @p other's indices.
     */
    ElementId merge(const Automaton &other, const std::string &prefix);

    /**
     * Weakly-connected components, each a sorted list of ElementIds.
     *
     * Components are the unit of placement: the AP routing matrix cannot
     * split a connected design across half-cores.
     */
    std::vector<std::vector<ElementId>> components() const;

    /** Remove elements unreachable from any start STE. */
    size_t removeDeadElements();

    /// @}

  private:
    std::string freshId(const char *stem);

    std::vector<Element> _elements;
    std::unordered_map<std::string, ElementId> _byId;
    uint64_t _nextAuto = 0;
};

} // namespace rapid::automata

#endif // RAPID_AUTOMATA_AUTOMATON_H
