#include "automata/charset.h"

#include <cstdio>

#include "support/error.h"

namespace rapid::automata {

namespace {

/** Append one symbol in bracket-expression syntax. */
void
appendSymbol(std::string &out, unsigned char c)
{
    switch (c) {
      case '\\':
        out += "\\\\";
        return;
      case ']':
        out += "\\]";
        return;
      case '[':
        out += "\\[";
        return;
      case '^':
        out += "\\^";
        return;
      case '-':
        out += "\\-";
        return;
      default:
        break;
    }
    if (c >= 0x20 && c < 0x7F) {
        out.push_back(static_cast<char>(c));
        return;
    }
    char buf[8];
    std::snprintf(buf, sizeof(buf), "\\x%02x", c);
    out += buf;
}

/** Append the body (between brackets) for the given membership test. */
void
appendBody(std::string &out, const CharSet &set, bool membership)
{
    int c = 0;
    while (c < 256) {
        if (set.test(static_cast<unsigned char>(c)) != membership) {
            ++c;
            continue;
        }
        int run_end = c;
        while (run_end + 1 < 256 &&
               set.test(static_cast<unsigned char>(run_end + 1)) ==
                   membership) {
            ++run_end;
        }
        appendSymbol(out, static_cast<unsigned char>(c));
        if (run_end > c + 1) {
            out.push_back('-');
            appendSymbol(out, static_cast<unsigned char>(run_end));
        } else if (run_end == c + 1) {
            appendSymbol(out, static_cast<unsigned char>(run_end));
        }
        c = run_end + 1;
    }
}

} // namespace

std::string
CharSet::str() const
{
    const int population = count();
    if (population == 256)
        return "*";
    if (population > 128) {
        std::string out = "[^";
        appendBody(out, *this, false);
        out.push_back(']');
        return out;
    }
    std::string out = "[";
    appendBody(out, *this, true);
    out.push_back(']');
    return out;
}

CharSet
CharSet::parse(const std::string &text)
{
    if (text == "*")
        return CharSet::all();
    if (text.size() < 2 || text.front() != '[' || text.back() != ']')
        throw CompileError("malformed symbol set: " + text);

    size_t pos = 1;
    const size_t end = text.size() - 1;
    bool negate = false;
    if (pos < end && text[pos] == '^') {
        negate = true;
        ++pos;
    }

    auto next_symbol = [&]() -> unsigned char {
        char c = text[pos++];
        if (c != '\\')
            return static_cast<unsigned char>(c);
        if (pos >= end)
            throw CompileError("dangling escape in symbol set: " + text);
        char esc = text[pos++];
        switch (esc) {
          case 'n':
            return '\n';
          case 't':
            return '\t';
          case 'r':
            return '\r';
          case '0':
            return '\0';
          case 'x': {
            if (pos + 1 >= end)
                throw CompileError("truncated \\x escape: " + text);
            auto hex = [&](char h) -> int {
                if (h >= '0' && h <= '9')
                    return h - '0';
                if (h >= 'a' && h <= 'f')
                    return h - 'a' + 10;
                if (h >= 'A' && h <= 'F')
                    return h - 'A' + 10;
                throw CompileError("bad hex digit in symbol set: " + text);
            };
            int hi = hex(text[pos]);
            int lo = hex(text[pos + 1]);
            pos += 2;
            return static_cast<unsigned char>(hi * 16 + lo);
          }
          default:
            return static_cast<unsigned char>(esc);
        }
    };

    CharSet set;
    while (pos < end) {
        unsigned char lo = next_symbol();
        if (pos < end && text[pos] == '-' && pos + 1 < end) {
            ++pos; // consume '-'
            unsigned char hi = next_symbol();
            if (hi < lo)
                throw CompileError("inverted range in symbol set: " + text);
            for (unsigned c = lo; c <= hi; ++c)
                set.add(static_cast<unsigned char>(c));
        } else {
            set.add(lo);
        }
    }
    return negate ? ~set : set;
}

} // namespace rapid::automata
