/**
 * @file
 * Runtime-dispatched SIMD kernels for the batch engine's hot loop.
 *
 * The two word-wide primitives that dominate BatchSimulator's step —
 * the symbol→bitvector match-table AND (`active = enabled & row`) and
 * the successor-union OR-reduction (`next |= row` per populated byte
 * slot) — operate on short rows of `uint64_t` (one bit lane per STE,
 * up to kByteTableMaxWords words for byte-table designs).  This layer
 * provides three implementations of those primitives:
 *
 *  - `baseline` — portable scalar loops, available everywhere;
 *  - `sse2`    — 128-bit vector ops (x86-64 baseline ISA);
 *  - `avx2`    — 256-bit vector ops, selected via cpuid.
 *
 * Selection happens once per BatchSimulator construction through
 * active(): the best CPU-supported variant wins unless the
 * RAPID_KERNEL environment variable ("baseline", "sse2", "avx2")
 * forces one — the kernel-parity tests use the override to cross-check
 * every variant's outputs on all 256 symbols.  Requesting a variant
 * the CPU cannot run is an error (the tests probe with byName()
 * first).
 *
 * All variants are bit-exact: for any (dst, a, b, words) the outputs
 * are identical, enforced by tests/automata/match_kernels_test.cc.
 */
#ifndef RAPID_AUTOMATA_MATCH_KERNELS_H
#define RAPID_AUTOMATA_MATCH_KERNELS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rapid::automata::kernels {

/** One kernel implementation; plain function pointers, no state. */
struct Ops {
    const char *name;
    /** dst[i] = a[i] & b[i] for i in [0, words). */
    void (*andRows)(uint64_t *dst, const uint64_t *a, const uint64_t *b,
                    size_t words);
    /** dst[i] |= src[i] for i in [0, words). */
    void (*orInto)(uint64_t *dst, const uint64_t *src, size_t words);
};

/**
 * The kernel variant to use: RAPID_KERNEL when set (re-read on every
 * call so tests can toggle it between engine constructions), else the
 * best variant this CPU supports.
 * @throws rapid::Error when RAPID_KERNEL names an unknown or
 * CPU-unsupported variant.
 */
const Ops &active();

/**
 * Width-aware variant selection: like active(), but when RAPID_KERNEL
 * does not force a variant, the row width decides.  Wide vectors only
 * pay off when their main loop runs: AVX2 steps 4 words per iteration
 * and measures *slower* than SSE2/baseline on the narrow rows typical
 * of small designs (the bench's 5-word rows ran avx2 at 16.1 MB/s vs
 * 18.2 for sse2), so rows need ≥ 8 words for avx2, ≥ 2 for sse2, and
 * fall back to baseline below that.
 */
const Ops &select(size_t words);

/** Look up a variant by name; nullptr when unknown or unsupported. */
const Ops *byName(const std::string &name);

/** Names of every variant this CPU can run (always has "baseline"). */
std::vector<std::string> available();

} // namespace rapid::automata::kernels

#endif // RAPID_AUTOMATA_MATCH_KERNELS_H
