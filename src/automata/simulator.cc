#include "automata/simulator.h"

#include <queue>

#include "support/error.h"

namespace rapid::automata {

Simulator::Simulator(const Automaton &automaton) : _automaton(automaton)
{
    _automaton.validate();
    _fanIn = _automaton.fanIn();

    // Topologically order the combinational nodes (Kahn).
    std::vector<int> degree(_automaton.size(), 0);
    for (ElementId i = 0; i < _automaton.size(); ++i) {
        if (_automaton[i].kind == ElementKind::Ste)
            continue;
        for (auto &[src, port] : _fanIn[i]) {
            (void)port;
            if (_automaton[src].kind != ElementKind::Ste)
                ++degree[i];
        }
    }
    std::queue<ElementId> ready;
    for (ElementId i = 0; i < _automaton.size(); ++i) {
        if (_automaton[i].kind != ElementKind::Ste && degree[i] == 0)
            ready.push(i);
    }
    while (!ready.empty()) {
        ElementId node = ready.front();
        ready.pop();
        _comb.push_back(node);
        for (const Edge &edge : _automaton[node].outputs) {
            if (_automaton[edge.to].kind == ElementKind::Ste)
                continue;
            if (--degree[edge.to] == 0)
                ready.push(edge.to);
        }
    }

    _counterSlot.assign(_automaton.size(), UINT32_MAX);
    for (ElementId i = 0; i < _automaton.size(); ++i) {
        const Element &element = _automaton[i];
        if (element.kind == ElementKind::Counter) {
            _counterSlot[i] = static_cast<uint32_t>(_counters.size());
            _counters.emplace_back();
        } else if (element.kind == ElementKind::Ste) {
            if (element.start == StartKind::AllInput)
                _alwaysEnabled.push_back(i);
            else if (element.start == StartKind::StartOfData)
                _startOfData.push_back(i);
        }
    }

    _enabled.assign(_automaton.size(), 0);
    _signal.assign(_automaton.size(), 0);
    reset();
}

void
Simulator::reset()
{
    for (ElementId id : _enabledList)
        _enabled[id] = 0;
    _enabledList.clear();
    for (ElementId id : _signalList)
        _signal[id] = 0;
    _signalList.clear();
    for (CounterState &state : _counters)
        state = CounterState{};
    _risingCounters.clear();
    _reports.clear();
    _cycle = 0;
}

void
Simulator::setSignal(ElementId element)
{
    if (!_signal[element]) {
        _signal[element] = 1;
        _signalList.push_back(element);
    }
}

void
Simulator::enableNext(std::vector<uint8_t> &next_enabled,
                      std::vector<ElementId> &next_list, ElementId target)
{
    if (!next_enabled[target]) {
        next_enabled[target] = 1;
        next_list.push_back(target);
    }
}

void
Simulator::setProfile(obs::ExecutionProfile *profile)
{
    _profile = profile;
    if (_profile)
        _profile->ensureElements(_automaton.size());
}

void
Simulator::step(unsigned char symbol)
{
    const size_t reports_before = _reports.size();

    // Phase 1: STE matching.  An STE is enabled when it received an
    // activation last cycle, is always-enabled, or is a start-of-data
    // STE at offset 0.
    auto consider = [&](ElementId ste) {
        if (_automaton[ste].symbols.test(symbol))
            setSignal(ste);
    };
    for (ElementId ste : _enabledList)
        consider(ste);
    for (ElementId ste : _alwaysEnabled) {
        if (!_enabled[ste]) // avoid double evaluation
            consider(ste);
    }
    if (_cycle == 0) {
        for (ElementId ste : _startOfData) {
            if (!_enabled[ste])
                consider(ste);
        }
    }

    // Phase 2: combinational settle.
    for (ElementId node : _comb) {
        const Element &element = _automaton[node];
        if (element.kind == ElementKind::Counter) {
            bool count_pulse = false;
            bool reset_pulse = false;
            for (auto &[src, port] : _fanIn[node]) {
                if (!_signal[src])
                    continue;
                if (port == Port::Count)
                    count_pulse = true;
                else if (port == Port::Reset)
                    reset_pulse = true;
            }
            CounterState &state = _counters[_counterSlot[node]];
            bool out = false;
            if (reset_pulse) {
                state.value = 0;
                state.latched = false;
            } else if (count_pulse) {
                if (state.value < element.target)
                    ++state.value;
                if (state.value >= element.target) {
                    switch (element.mode) {
                      case CounterMode::Latch:
                        state.latched = true;
                        break;
                      case CounterMode::Pulse:
                        out = true;
                        break;
                      case CounterMode::Roll:
                        out = true;
                        state.value = 0;
                        break;
                    }
                }
            }
            if (element.mode == CounterMode::Latch && state.latched)
                out = true;
            if (out && !state.prevOut)
                _risingCounters.push_back(node);
            state.prevOut = out;
            if (out)
                setSignal(node);
        } else { // Gate
            bool all = true;
            bool any = false;
            for (auto &[src, port] : _fanIn[node]) {
                (void)port;
                if (_signal[src])
                    any = true;
                else
                    all = false;
            }
            bool out = false;
            switch (element.op) {
              case GateOp::And:
                out = all;
                break;
              case GateOp::Or:
                out = any;
                break;
              case GateOp::Not:
                out = !any;
                break;
              case GateOp::Nand:
                out = !all;
                break;
              case GateOp::Nor:
                out = !any;
                break;
            }
            if (out)
                setSignal(node);
        }
    }

    // Phase 3: reports.  STEs and gates report on every active cycle
    // (the AP's relaxed acceptance); counters report on the cycle their
    // output rises — a latched counter generates one target event, not
    // one per remaining cycle.
    for (ElementId active : _signalList) {
        if (_automaton[active].report &&
            _automaton[active].kind != ElementKind::Counter) {
            _reports.push_back(ReportEvent{_cycle, active});
        }
    }
    for (ElementId counter : _risingCounters) {
        if (_automaton[counter].report)
            _reports.push_back(ReportEvent{_cycle, counter});
    }
    _risingCounters.clear();

    // Execution profiling: _signalList holds exactly the elements that
    // activated this cycle (matching STEs plus asserted comb nodes).
    if (_profile) {
        for (ElementId active : _signalList)
            ++_profile->elementActivations[active];
        _profile->recordCycle(_signalList.size(),
                              _reports.size() - reports_before);
    }

    // Phase 4: compute next-cycle enables from activation edges.  The
    // scratch buffers persist across steps (flags are cleared lazily via
    // the id lists) so a step costs O(active + combinational), not O(n).
    std::vector<uint8_t> &next_enabled = _scratchEnabled;
    std::vector<ElementId> &next_list = _scratchList;
    if (next_enabled.size() != _automaton.size())
        next_enabled.assign(_automaton.size(), 0);
    next_list.clear();
    for (ElementId active : _signalList) {
        for (const Edge &edge : _automaton[active].outputs) {
            if (edge.port == Port::Activate &&
                _automaton[edge.to].kind == ElementKind::Ste) {
                enableNext(next_enabled, next_list, edge.to);
            }
        }
    }

    for (ElementId id : _signalList)
        _signal[id] = 0;
    _signalList.clear();
    for (ElementId id : _enabledList)
        _enabled[id] = 0;
    _enabledList.clear();
    _enabled.swap(_scratchEnabled);
    _enabledList.swap(_scratchList);
    ++_cycle;
}

std::vector<ReportEvent>
Simulator::run(std::string_view input)
{
    reset();
    for (char c : input)
        step(static_cast<unsigned char>(c));
    return _reports;
}

uint32_t
Simulator::counterValue(ElementId element) const
{
    internalCheck(element < _counterSlot.size() &&
                      _counterSlot[element] != UINT32_MAX,
                  "counterValue: not a counter");
    return _counters[_counterSlot[element]].value;
}

bool
Simulator::counterLatched(ElementId element) const
{
    internalCheck(element < _counterSlot.size() &&
                      _counterSlot[element] != UINT32_MAX,
                  "counterLatched: not a counter");
    return _counters[_counterSlot[element]].latched;
}

} // namespace rapid::automata
