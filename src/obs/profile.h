/**
 * @file
 * Execution profiles for the simulation engines.
 *
 * An ExecutionProfile accumulates what a run of a design actually did:
 *
 *  - per-cycle active-element counts, kept as a bounded bucketed
 *    series (activeSeries) so arbitrarily long streams profile in
 *    constant memory;
 *  - a per-element activation heatmap (elementActivations, indexed by
 *    automaton ElementId) answering "where do the STE cycles go";
 *  - a report-rate series (reportSeries) bucketed identically.
 *
 * Both engines fill the same structure — the scalar Simulator via an
 * optional profile sink, the BatchSimulator via profiled run overloads
 * — and host::Device merges per-run profiles and exposes them through
 * Device::stats().  Profiling is opt-in per run; un-profiled paths are
 * untouched (the batch engine keeps its register-resident fast loop).
 *
 * The struct is a plain value: merging two profiles (multi-stream
 * batches, repeated runs) is merge(), and toJson() renders a compact
 * summary with the hottest elements for --stats output.
 */
#ifndef RAPID_OBS_PROFILE_H
#define RAPID_OBS_PROFILE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rapid::obs {

struct ExecutionProfile {
    /** Symbols consumed (cycles executed). */
    uint64_t cycles = 0;
    /** Total element activations (active STEs + asserted comb nodes). */
    uint64_t activations = 0;
    /** Total report events. */
    uint64_t reports = 0;

    /** Activation count per element, indexed by ElementId. */
    std::vector<uint64_t> elementActivations;

    /**
     * Activations / reports per bucket of cyclesPerBucket cycles.
     * Bucket width starts at 1 cycle and doubles whenever the series
     * would exceed kMaxBuckets, so memory stays bounded.
     */
    std::vector<uint64_t> activeSeries;
    std::vector<uint64_t> reportSeries;
    uint64_t cyclesPerBucket = 1;

    static constexpr size_t kMaxBuckets = 1024;

    /** Grow the heatmap to cover @p elements element ids. */
    void
    ensureElements(size_t elements)
    {
        if (elementActivations.size() < elements)
            elementActivations.resize(elements, 0);
    }

    /** Record one executed cycle's totals into the series. */
    void recordCycle(uint64_t active, uint64_t reported);

    /** Accumulate @p other (e.g. another stream of a batch). */
    void merge(const ExecutionProfile &other);

    /**
     * Compact JSON summary: scalar totals, mean/peak activity, and the
     * @p hottest most-activated element ids with their counts.
     */
    std::string toJson(size_t hottest = 8) const;

  private:
    /** Double the bucket width, merging adjacent buckets. */
    void compact();
    /** Coarsen the series to @p bucket cycles per bucket. */
    void coarsenTo(uint64_t bucket);
};

} // namespace rapid::obs

#endif // RAPID_OBS_PROFILE_H
