/**
 * @file
 * Span-based tracing for the compile-and-run pipeline.
 *
 * A Span is an RAII scope marker: construct one at the top of a
 * pipeline phase (parse → lower → optimize → tessellate → place_route
 * → configure → stream) and its wall time is recorded when the scope
 * exits.  Spans nest — a per-thread depth counter reconstructs the
 * phase tree without any explicit parent links.
 *
 * Two consumers share the spans:
 *
 *  - when tracing is enabled (obs::tracingEnabled()), completed spans
 *    become Chrome trace_event entries (Tracer::toChromeJson(), loads
 *    in chrome://tracing and Perfetto) and feed the human-readable
 *    phase-time tree (Tracer::phaseTree());
 *  - when stats are enabled, each span also records into the metrics
 *    registry histogram `phase.<name>_ms`, so `--stats` output carries
 *    per-phase wall times without a trace file.
 *
 * Cost when disabled: the Span constructor is one relaxed atomic load
 * and the destructor one predictable branch — safe to leave in library
 * code that also runs in hot fuzzing loops.
 */
#ifndef RAPID_OBS_TRACE_H
#define RAPID_OBS_TRACE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace rapid::obs {

/** One completed span, in Chrome trace_event "X" (complete) form. */
struct TraceEvent {
    std::string name;
    std::string category;
    /** Microseconds since the process trace epoch. */
    uint64_t startUs = 0;
    uint64_t durationUs = 0;
    /** Small dense thread id (support/thread.h). */
    uint32_t tid = 0;
    /** Nesting depth within the recording thread (0 = top level). */
    uint32_t depth = 0;
};

/** Process-wide buffer of completed spans. */
class Tracer {
  public:
    static Tracer &instance();

    /** Append one completed span (drops beyond kMaxEvents). */
    void record(TraceEvent event);

    std::vector<TraceEvent> events() const;
    size_t size() const;
    uint64_t dropped() const;

    /**
     * The Chrome trace_event JSON object:
     * {"traceEvents":[{"name":..,"ph":"X","ts":..,"dur":..,..}],
     *  "displayTimeUnit":"ms"}.
     */
    std::string toChromeJson() const;

    /**
     * Indented phase-time tree, one section per thread:
     *     compile                         12.402 ms
     *       parse                          0.311 ms
     *       optimize                       3.870 ms
     */
    std::string phaseTree() const;

    /** Drop all recorded events (tests, repeated tool runs). */
    void clear();

    /** Bound on retained events; excess spans count as dropped. */
    static constexpr size_t kMaxEvents = 1 << 20;

  private:
    Tracer() = default;

    mutable std::mutex _mutex;
    std::vector<TraceEvent> _events;
    uint64_t _dropped = 0;
};

/**
 * RAII phase marker.  @p name and @p category must outlive the span
 * (string literals in practice).
 */
class Span {
  public:
    explicit Span(const char *name, const char *category = "pipeline");
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *_name;
    const char *_category;
    uint64_t _startUs = 0;
    uint32_t _depth = 0;
    bool _active = false;
};

/** Microseconds since the process trace epoch (first use). */
uint64_t traceNowUs();

} // namespace rapid::obs

#endif // RAPID_OBS_TRACE_H
