#include "obs/obs.h"

#include <atomic>
#include <cstdlib>
#include <fstream>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace rapid::obs {

namespace detail {
std::atomic<bool> g_stats{false};
std::atomic<bool> g_trace{false};
} // namespace detail

namespace {

std::string &
statsPathStorage()
{
    static std::string path;
    return path;
}

std::string &
tracePathStorage()
{
    static std::string path;
    return path;
}

bool
writeFile(const std::string &path, const std::string &content,
          const char *what)
{
    std::ofstream out(path, std::ios::binary);
    out << content;
    if (!out) {
        logWarn("obs", std::string("cannot write ") + what + " to " +
                           path);
        return false;
    }
    return true;
}

} // namespace

void
setStatsEnabled(bool enabled)
{
    detail::g_stats.store(enabled, std::memory_order_relaxed);
}

void
setTracingEnabled(bool enabled)
{
    detail::g_trace.store(enabled, std::memory_order_relaxed);
}

void
initFromEnv()
{
    if (const char *path = std::getenv("RAPID_STATS")) {
        if (*path) {
            setStatsEnabled(true);
            setStatsPath(path);
        }
    }
    if (const char *path = std::getenv("RAPID_TRACE")) {
        if (*path) {
            setTracingEnabled(true);
            setTracePath(path);
        }
    }
}

void
setStatsPath(const std::string &path)
{
    statsPathStorage() = path;
}

void
setTracePath(const std::string &path)
{
    tracePathStorage() = path;
}

const std::string &
statsPath()
{
    return statsPathStorage();
}

const std::string &
tracePath()
{
    return tracePathStorage();
}

bool
writeStats(const std::string &path)
{
    return writeFile(path, MetricsRegistry::instance().toJson(),
                     "stats");
}

bool
writeTrace(const std::string &path)
{
    return writeFile(path, Tracer::instance().toChromeJson(), "trace");
}

bool
flush()
{
    bool ok = true;
    if (!statsPath().empty())
        ok = writeStats(statsPath()) && ok;
    if (!tracePath().empty())
        ok = writeTrace(tracePath()) && ok;
    return ok;
}

namespace {

/**
 * One staged file the signal handler can write.  The strings are
 * mutated only on the signal-receiving thread inside a busy=true
 * window; the handler skips a slot whose busy flag is up (it can only
 * be up when the signal interrupted the stager itself).
 */
struct StagedSlot {
    std::atomic<bool> busy{false};
    std::atomic<bool> populated{false};
    bool append = false;
    std::string path;
    std::string content;
};

StagedSlot g_staged[3];

StagedSlot &
slotFor(StagedFile slot)
{
    return g_staged[static_cast<int>(slot)];
}

extern "C" void
signalFlushHandler(int signo)
{
    for (StagedSlot &slot : g_staged) {
        if (slot.busy.load(std::memory_order_acquire))
            continue;
        if (!slot.populated.load(std::memory_order_acquire))
            continue;
        int flags = O_WRONLY | O_CREAT |
                    (slot.append ? O_APPEND : O_TRUNC);
        int fd = ::open(slot.path.c_str(), flags, 0644);
        if (fd < 0)
            continue;
        const char *data = slot.content.data();
        size_t remaining = slot.content.size();
        while (remaining > 0) {
            ssize_t n = ::write(fd, data, remaining);
            if (n <= 0)
                break;
            data += n;
            remaining -= static_cast<size_t>(n);
        }
        ::close(fd);
    }
    ::_Exit(128 + signo);
}

} // namespace

void
installSignalFlush()
{
    static bool installed = false;
    if (installed)
        return;
    installed = true;
    struct sigaction action{};
    action.sa_handler = signalFlushHandler;
    sigemptyset(&action.sa_mask);
    // Block the sibling signal while handling: the handler exits, so
    // only one of the pair ever runs.
    sigaddset(&action.sa_mask, SIGINT);
    sigaddset(&action.sa_mask, SIGTERM);
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
}

void
stageSignalFile(StagedFile which, const std::string &path,
                const std::string &content, bool append)
{
    StagedSlot &slot = slotFor(which);
    slot.busy.store(true, std::memory_order_release);
    slot.path = path;
    slot.content = content;
    slot.append = append;
    slot.populated.store(!path.empty(), std::memory_order_release);
    slot.busy.store(false, std::memory_order_release);
}

void
clearSignalFile(StagedFile which)
{
    StagedSlot &slot = slotFor(which);
    slot.busy.store(true, std::memory_order_release);
    slot.populated.store(false, std::memory_order_release);
    slot.path.clear();
    slot.content.clear();
    slot.busy.store(false, std::memory_order_release);
}

void
stageTelemetrySnapshot()
{
    if (!statsPath().empty()) {
        stageSignalFile(StagedFile::Stats, statsPath(),
                        MetricsRegistry::instance().toJson());
    }
    if (!tracePath().empty()) {
        stageSignalFile(StagedFile::Trace, tracePath(),
                        Tracer::instance().toChromeJson());
    }
}

} // namespace rapid::obs
