#include "obs/obs.h"

#include <cstdlib>
#include <fstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace rapid::obs {

namespace detail {
std::atomic<bool> g_stats{false};
std::atomic<bool> g_trace{false};
} // namespace detail

namespace {

std::string &
statsPathStorage()
{
    static std::string path;
    return path;
}

std::string &
tracePathStorage()
{
    static std::string path;
    return path;
}

bool
writeFile(const std::string &path, const std::string &content,
          const char *what)
{
    std::ofstream out(path, std::ios::binary);
    out << content;
    if (!out) {
        logWarn("obs", std::string("cannot write ") + what + " to " +
                           path);
        return false;
    }
    return true;
}

} // namespace

void
setStatsEnabled(bool enabled)
{
    detail::g_stats.store(enabled, std::memory_order_relaxed);
}

void
setTracingEnabled(bool enabled)
{
    detail::g_trace.store(enabled, std::memory_order_relaxed);
}

void
initFromEnv()
{
    if (const char *path = std::getenv("RAPID_STATS")) {
        if (*path) {
            setStatsEnabled(true);
            setStatsPath(path);
        }
    }
    if (const char *path = std::getenv("RAPID_TRACE")) {
        if (*path) {
            setTracingEnabled(true);
            setTracePath(path);
        }
    }
}

void
setStatsPath(const std::string &path)
{
    statsPathStorage() = path;
}

void
setTracePath(const std::string &path)
{
    tracePathStorage() = path;
}

const std::string &
statsPath()
{
    return statsPathStorage();
}

const std::string &
tracePath()
{
    return tracePathStorage();
}

bool
writeStats(const std::string &path)
{
    return writeFile(path, MetricsRegistry::instance().toJson(),
                     "stats");
}

bool
writeTrace(const std::string &path)
{
    return writeFile(path, Tracer::instance().toChromeJson(), "trace");
}

bool
flush()
{
    bool ok = true;
    if (!statsPath().empty())
        ok = writeStats(statsPath()) && ok;
    if (!tracePath().empty())
        ok = writeTrace(tracePath()) && ok;
    return ok;
}

} // namespace rapid::obs
