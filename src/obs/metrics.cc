#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/strings.h"

namespace rapid::obs {

namespace {

uint64_t
doubleBits(double value)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

double
bitsDouble(uint64_t bits)
{
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

/** JSON-safe number rendering (no NaN/Inf literals). */
std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "0";
    // %.17g round-trips doubles but prints 0.1 noisily; %.12g is
    // plenty for timings and rates while staying readable.
    return strprintf("%.12g", value);
}

} // namespace

void
Gauge::set(double value)
{
    _bits.store(doubleBits(value), std::memory_order_relaxed);
}

double
Gauge::value() const
{
    return bitsDouble(_bits.load(std::memory_order_relaxed));
}

void
Histogram::record(double value)
{
    std::lock_guard<std::mutex> guard(_mutex);
    _samples.push_back(value);
}

HistogramSnapshot
Histogram::snapshot() const
{
    std::vector<double> samples;
    {
        std::lock_guard<std::mutex> guard(_mutex);
        samples = _samples;
    }
    HistogramSnapshot snap;
    snap.count = samples.size();
    if (samples.empty())
        return snap;
    std::sort(samples.begin(), samples.end());
    for (double sample : samples)
        snap.sum += sample;
    snap.min = samples.front();
    snap.max = samples.back();
    snap.mean = snap.sum / static_cast<double>(samples.size());
    auto rank = [&](double q) {
        const double pos = q * static_cast<double>(samples.size() - 1);
        return samples[static_cast<size_t>(std::llround(pos))];
    };
    snap.p50 = rank(0.50);
    snap.p95 = rank(0.95);
    return snap;
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> guard(_mutex);
    auto &slot = _counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> guard(_mutex);
    auto &slot = _gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> guard(_mutex);
    auto &slot = _histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

bool
MetricsRegistry::empty() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _counters.empty() && _gauges.empty() &&
           _histograms.empty();
}

std::string
MetricsRegistry::toJson(
    const std::vector<std::pair<std::string, std::string>> &extra)
    const
{
    // Copy the maps' contents under the lock, render outside it
    // (snapshot() takes per-histogram locks of its own).
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
    {
        std::lock_guard<std::mutex> guard(_mutex);
        for (const auto &[name, counter] : _counters)
            counters.emplace_back(name, counter->value());
        for (const auto &[name, gauge] : _gauges)
            gauges.emplace_back(name, gauge->value());
        for (const auto &[name, histogram] : _histograms)
            histograms.emplace_back(name, histogram->snapshot());
    }

    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters) {
        out += first ? "\n" : ",\n";
        first = false;
        out += strprintf("    \"%s\": %llu", name.c_str(),
                         static_cast<unsigned long long>(value));
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : gauges) {
        out += first ? "\n" : ",\n";
        first = false;
        out += strprintf("    \"%s\": %s", name.c_str(),
                         jsonNumber(value).c_str());
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto &[name, snap] : histograms) {
        out += first ? "\n" : ",\n";
        first = false;
        out += strprintf(
            "    \"%s\": {\"count\": %llu, \"sum\": %s, \"min\": %s, "
            "\"max\": %s, \"mean\": %s, \"p50\": %s, \"p95\": %s}",
            name.c_str(),
            static_cast<unsigned long long>(snap.count),
            jsonNumber(snap.sum).c_str(), jsonNumber(snap.min).c_str(),
            jsonNumber(snap.max).c_str(),
            jsonNumber(snap.mean).c_str(),
            jsonNumber(snap.p50).c_str(),
            jsonNumber(snap.p95).c_str());
    }
    out += first ? "}" : "\n  }";
    for (const auto &[key, json] : extra) {
        out += strprintf(",\n  \"%s\": ", key.c_str());
        out += json;
    }
    out += "\n}\n";
    return out;
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> guard(_mutex);
    _counters.clear();
    _gauges.clear();
    _histograms.clear();
}

} // namespace rapid::obs
