#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/strings.h"

namespace rapid::obs {

namespace {

uint64_t
doubleBits(double value)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

double
bitsDouble(uint64_t bits)
{
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

/** JSON-safe number rendering (no NaN/Inf literals). */
std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "0";
    // %.17g round-trips doubles but prints 0.1 noisily; %.12g is
    // plenty for timings and rates while staying readable.
    return strprintf("%.12g", value);
}

} // namespace

void
Gauge::set(double value)
{
    _bits.store(doubleBits(value), std::memory_order_relaxed);
}

double
Gauge::value() const
{
    return bitsDouble(_bits.load(std::memory_order_relaxed));
}

int
Histogram::bucketIndex(double value)
{
    // Guard the log: callers route value <= 0 to the underflow
    // bucket before ever computing an index.
    const int index = static_cast<int>(
        std::floor(std::log(value) / std::log(kGrowth)));
    return std::clamp(index, -kMaxBucketIndex, kMaxBucketIndex);
}

double
Histogram::bucketLowerBound(int index)
{
    return std::exp(static_cast<double>(index) * std::log(kGrowth));
}

void
Histogram::record(double value)
{
    if (!std::isfinite(value))
        return;
    std::lock_guard<std::mutex> guard(_mutex);
    if (_count == 0) {
        _min = value;
        _max = value;
    } else {
        _min = std::min(_min, value);
        _max = std::max(_max, value);
    }
    ++_count;
    _sum += value;
    if (value > 0)
        ++_buckets[bucketIndex(value)];
    else
        ++_zeroOrNegative;
}

HistogramSnapshot
Histogram::snapshot() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    HistogramSnapshot snap;
    snap.count = _count;
    if (_count == 0)
        return snap;
    snap.sum = _sum;
    snap.min = _min;
    snap.max = _max;
    snap.mean = _sum / static_cast<double>(_count);

    // Nearest-rank quantile over the bucket counts.  The bucket's
    // geometric midpoint is within sqrt(kGrowth) of any sample in it;
    // clamping to the exact [min, max] keeps single-sample and
    // extreme-rank quantiles exact.
    auto quantile = [&](double q) {
        const uint64_t rank = static_cast<uint64_t>(std::llround(
            q * static_cast<double>(_count - 1)));
        uint64_t seen = _zeroOrNegative;
        if (rank < seen)
            return std::clamp(std::min(_min, 0.0), _min, _max);
        for (const auto &[index, bucket_count] : _buckets) {
            seen += bucket_count;
            if (rank < seen) {
                const double mid =
                    bucketLowerBound(index) * std::sqrt(kGrowth);
                return std::clamp(mid, _min, _max);
            }
        }
        return _max;
    };
    snap.p50 = quantile(0.50);
    snap.p95 = quantile(0.95);
    return snap;
}

size_t
Histogram::bucketCount() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _buckets.size() + (_zeroOrNegative > 0 ? 1 : 0);
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> guard(_mutex);
    auto &slot = _counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> guard(_mutex);
    auto &slot = _gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> guard(_mutex);
    auto &slot = _histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

bool
MetricsRegistry::empty() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _counters.empty() && _gauges.empty() &&
           _histograms.empty();
}

RegistrySnapshot
MetricsRegistry::snapshot() const
{
    // Copy the maps' contents under the lock, render outside it
    // (Histogram::snapshot() takes per-histogram locks of its own).
    RegistrySnapshot snap;
    std::lock_guard<std::mutex> guard(_mutex);
    for (const auto &[name, counter] : _counters)
        snap.counters.emplace_back(name, counter->value());
    for (const auto &[name, gauge] : _gauges)
        snap.gauges.emplace_back(name, gauge->value());
    for (const auto &[name, histogram] : _histograms)
        snap.histograms.emplace_back(name, histogram->snapshot());
    return snap;
}

std::string
MetricsRegistry::toJson(
    const std::vector<std::pair<std::string, std::string>> &extra)
    const
{
    const RegistrySnapshot snap = snapshot();
    const auto &counters = snap.counters;
    const auto &gauges = snap.gauges;
    const auto &histograms = snap.histograms;

    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters) {
        out += first ? "\n" : ",\n";
        first = false;
        out += strprintf("    \"%s\": %llu", name.c_str(),
                         static_cast<unsigned long long>(value));
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : gauges) {
        out += first ? "\n" : ",\n";
        first = false;
        out += strprintf("    \"%s\": %s", name.c_str(),
                         jsonNumber(value).c_str());
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto &[name, snap] : histograms) {
        out += first ? "\n" : ",\n";
        first = false;
        out += strprintf(
            "    \"%s\": {\"count\": %llu, \"sum\": %s, \"min\": %s, "
            "\"max\": %s, \"mean\": %s, \"p50\": %s, \"p95\": %s}",
            name.c_str(),
            static_cast<unsigned long long>(snap.count),
            jsonNumber(snap.sum).c_str(), jsonNumber(snap.min).c_str(),
            jsonNumber(snap.max).c_str(),
            jsonNumber(snap.mean).c_str(),
            jsonNumber(snap.p50).c_str(),
            jsonNumber(snap.p95).c_str());
    }
    out += first ? "}" : "\n  }";
    for (const auto &[key, json] : extra) {
        out += strprintf(",\n  \"%s\": ", key.c_str());
        out += json;
    }
    out += "\n}\n";
    return out;
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> guard(_mutex);
    _counters.clear();
    _gauges.clear();
    _histograms.clear();
}

} // namespace rapid::obs
