/**
 * @file
 * Flight recorder: an append-only journal of every build and run.
 *
 * Each `rapidc build` / `rapidc run` appends exactly one structured
 * JSON line to `~/.rapid/flightlog.jsonl` (override the path with
 * RAPID_FLIGHTLOG=<path>, disable with RAPID_FLIGHTLOG=off) capturing
 * everything needed to reconstruct "what ran, where, and how fast"
 * after the fact: the source revision (git describe), the program's
 * compile-cache key, the engine/thread/kernel configuration, the host
 * fingerprint (obs/fingerprint.h), phase wall times, and an end-of-run
 * snapshot of every registry counter and gauge.
 *
 * The log is size-capped (RAPID_FLIGHTLOG_MAX_BYTES, default 8 MiB):
 * when an append would exceed the cap the current file is rotated to
 * `<path>.1` (replacing any previous rotation) and a fresh file
 * started, so the journal holds roughly the last two caps' worth of
 * history and never grows unbounded.
 *
 * Interrupted runs still leave a line: rapidc stages a pre-rendered
 * record (marked "interrupted": true) through the obs/obs.h signal-
 * flush slots at each quiescent point; a normal-exit append() clears
 * the staged line so exactly one line lands per invocation either way.
 */
#ifndef RAPID_OBS_RECORDER_H
#define RAPID_OBS_RECORDER_H

#include <cstdint>
#include <string>

namespace rapid::obs {

/** Per-invocation facts the caller supplies (the recorder adds the
 *  timestamp, host fingerprint, and metric snapshots itself). */
struct FlightRecord {
    /** "build" or "run". */
    std::string command;
    /** Source or image path the tool operated on. */
    std::string program;
    /** Compile-cache key of the design (host::cacheKey), "" unknown. */
    std::string sourceKey;
    /** Engine name for runs ("scalar", "batch", ...), "" for builds. */
    std::string engine;
    /** Active SIMD match-kernel tier. */
    std::string kernel;
    unsigned threads = 0;
    unsigned shards = 0;
    int exitCode = 0;
    /** End-to-end wall time of the invocation. */
    double wallMs = 0;
    uint64_t inputBytes = 0;
    uint64_t reports = 0;
    /** True on lines staged for the fatal-signal path. */
    bool interrupted = false;
};

class FlightRecorder {
  public:
    /** The process-wide recorder (path/cap resolved once from env). */
    static FlightRecorder &instance();

    /** A recorder writing @p path with cap @p maxBytes, bypassing the
     *  environment — for tests exercising append/rotation directly. */
    FlightRecorder(std::string path, uint64_t maxBytes);

    /** False when no destination is configured (HOME unset or
     *  RAPID_FLIGHTLOG=off/empty). */
    bool enabled() const { return !_path.empty(); }

    const std::string &path() const { return _path; }
    uint64_t maxBytes() const { return _maxBytes; }

    /**
     * Render @p record as one newline-terminated JSON line, embedding
     * the timestamp, git describe, host fingerprint, counter/gauge
     * snapshot, and phase times from the metrics registry.
     */
    std::string renderLine(const FlightRecord &record) const;

    /**
     * Append one line for @p record, rotating first when the file
     * would exceed maxBytes().  Clears any line staged for the signal
     * path, so a completed invocation logs exactly once.
     * @return false when disabled or the write failed.
     */
    bool append(const FlightRecord &record);

    /**
     * Pre-render @p record (forced interrupted=true) and stage it with
     * the obs/obs.h signal-flush machinery so a SIGINT/SIGTERM still
     * leaves a journal line.  No-op when disabled.
     */
    void stage(FlightRecord record);

  private:
    FlightRecorder();

    /** Rotate `<path>` to `<path>.1` when an @p incoming-byte append
     *  would exceed the cap. */
    void rotateIfNeeded(size_t incoming);

    std::string _path;
    uint64_t _maxBytes = 0;
};

} // namespace rapid::obs

#endif // RAPID_OBS_RECORDER_H
