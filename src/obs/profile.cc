#include "obs/profile.h"

#include <algorithm>

#include "support/strings.h"

namespace rapid::obs {

void
ExecutionProfile::recordCycle(uint64_t active, uint64_t reported)
{
    size_t bucket = static_cast<size_t>(cycles / cyclesPerBucket);
    while (bucket >= kMaxBuckets) {
        compact();
        bucket = static_cast<size_t>(cycles / cyclesPerBucket);
    }
    if (activeSeries.size() <= bucket) {
        activeSeries.resize(bucket + 1, 0);
        reportSeries.resize(bucket + 1, 0);
    }
    activeSeries[bucket] += active;
    reportSeries[bucket] += reported;
    ++cycles;
    activations += active;
    reports += reported;
}

void
ExecutionProfile::compact()
{
    auto halve = [](std::vector<uint64_t> &series) {
        const size_t half = (series.size() + 1) / 2;
        for (size_t i = 0; i < half; ++i) {
            uint64_t sum = series[2 * i];
            if (2 * i + 1 < series.size())
                sum += series[2 * i + 1];
            series[i] = sum;
        }
        series.resize(half);
    };
    halve(activeSeries);
    halve(reportSeries);
    cyclesPerBucket *= 2;
}

void
ExecutionProfile::coarsenTo(uint64_t bucket)
{
    while (cyclesPerBucket < bucket)
        compact();
}

void
ExecutionProfile::merge(const ExecutionProfile &other)
{
    cycles += other.cycles;
    activations += other.activations;
    reports += other.reports;

    ensureElements(other.elementActivations.size());
    for (size_t i = 0; i < other.elementActivations.size(); ++i)
        elementActivations[i] += other.elementActivations[i];

    // Series overlay aligned at per-stream offset 0: bucket widths are
    // always powers of two, so coarsen both to the wider one and add.
    ExecutionProfile aligned;
    const ExecutionProfile *src = &other;
    if (other.cyclesPerBucket < cyclesPerBucket) {
        aligned.activeSeries = other.activeSeries;
        aligned.reportSeries = other.reportSeries;
        aligned.cyclesPerBucket = other.cyclesPerBucket;
        aligned.coarsenTo(cyclesPerBucket);
        src = &aligned;
    } else {
        coarsenTo(other.cyclesPerBucket);
    }
    if (activeSeries.size() < src->activeSeries.size()) {
        activeSeries.resize(src->activeSeries.size(), 0);
        reportSeries.resize(src->reportSeries.size(), 0);
    }
    for (size_t i = 0; i < src->activeSeries.size(); ++i)
        activeSeries[i] += src->activeSeries[i];
    for (size_t i = 0; i < src->reportSeries.size(); ++i)
        reportSeries[i] += src->reportSeries[i];
}

std::string
ExecutionProfile::toJson(size_t hottest) const
{
    std::string out = strprintf(
        "{\"cycles\": %llu, \"activations\": %llu, \"reports\": %llu, "
        "\"mean_active_per_cycle\": %.6g, \"cycles_per_bucket\": %llu",
        static_cast<unsigned long long>(cycles),
        static_cast<unsigned long long>(activations),
        static_cast<unsigned long long>(reports),
        cycles ? static_cast<double>(activations) /
                     static_cast<double>(cycles)
               : 0.0,
        static_cast<unsigned long long>(cyclesPerBucket));

    // Heatmap summary: the N most-activated elements.
    std::vector<std::pair<uint64_t, size_t>> ranked;
    for (size_t i = 0; i < elementActivations.size(); ++i) {
        if (elementActivations[i])
            ranked.emplace_back(elementActivations[i], i);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  return a.first != b.first ? a.first > b.first
                                            : a.second < b.second;
              });
    if (ranked.size() > hottest)
        ranked.resize(hottest);
    out += ", \"hottest\": [";
    for (size_t i = 0; i < ranked.size(); ++i) {
        out += strprintf(
            "%s{\"element\": %zu, \"activations\": %llu}",
            i ? ", " : "", ranked[i].second,
            static_cast<unsigned long long>(ranked[i].first));
    }
    out += "]";

    auto appendSeries = [&](const char *key,
                            const std::vector<uint64_t> &series) {
        out += strprintf(", \"%s\": [", key);
        for (size_t i = 0; i < series.size(); ++i) {
            out += strprintf(
                "%s%llu", i ? ", " : "",
                static_cast<unsigned long long>(series[i]));
        }
        out += "]";
    };
    appendSeries("active_series", activeSeries);
    appendSeries("report_series", reportSeries);
    out += "}";
    return out;
}

} // namespace rapid::obs
