/**
 * @file
 * Machine facts for telemetry provenance.
 *
 * Bench artifacts, flight-recorder lines, and the Prometheus
 * `rapid_build_info` metric all need to answer "what machine produced
 * these numbers" — a 1-core container's throughput must never be
 * diffed against a 32-core bare-metal run as if they were comparable
 * (`rapid-bench-diff` keys its regression gate on this).  A
 * HostFingerprint captures the facts that actually change the numbers:
 *
 *  - configured vs. online vs. affinity-visible core counts (the
 *    container caveat from the PR 6 bench notes, machine-readable);
 *  - the CPU affinity mask itself (hex, low cpu first);
 *  - the SIMD kernel tier this CPU dispatches to ("avx2", "sse2",
 *    "baseline" — the same names as automata/match_kernels.h);
 *  - the architecture string.
 *
 * `id()` folds the comparison-relevant facts into one short key; two
 * runs are throughput-comparable exactly when their ids match.
 * gitDescribe() reports the source revision the binary was configured
 * from (stamped at CMake configure time).
 */
#ifndef RAPID_OBS_FINGERPRINT_H
#define RAPID_OBS_FINGERPRINT_H

#include <string>

namespace rapid::obs {

struct HostFingerprint {
    /** Processors configured on the machine (_SC_NPROCESSORS_CONF). */
    unsigned configuredCores = 1;
    /** Processors currently online (_SC_NPROCESSORS_ONLN). */
    unsigned onlineCores = 1;
    /** Processors visible through this process's affinity mask. */
    unsigned affinityCores = 1;
    /** Affinity mask as lowercase hex, least-significant cpu first. */
    std::string affinityMask;
    /** Best SIMD kernel tier this CPU supports. */
    std::string kernelTier;
    /** Architecture ("x86_64", "aarch64", ...). */
    std::string arch;

    /**
     * Short comparison key: runs with equal ids were produced under
     * comparable compute conditions (same core counts, same kernel
     * tier, same architecture), e.g. "8c8o8a-x86_64-avx2".
     */
    std::string id() const;

    /** One JSON object with every field plus the id. */
    std::string toJson() const;
};

/** The calling process's fingerprint (computed once, then cached). */
const HostFingerprint &hostFingerprint();

/**
 * `git describe --always --dirty` of the source tree this binary was
 * configured from, or "unknown" outside a git checkout.
 */
std::string gitDescribe();

} // namespace rapid::obs

#endif // RAPID_OBS_FINGERPRINT_H
