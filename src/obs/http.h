/**
 * @file
 * Loopback listener shared by the observability plane and the match
 * service.
 *
 * Historically this was a one-connection-at-a-time HTTP scrape
 * endpoint; it is now a small generic acceptor.  Every accepted
 * connection runs on its own handler thread, and the first bytes of
 * the connection select the protocol:
 *
 *  - a registered *stream handler* owns the connection when the bytes
 *    begin with its 4-byte magic (rapidd's framed match protocol,
 *    "RPDM" — see serve/protocol.h);
 *  - anything else is treated as HTTP and routed as before:
 *
 *      `GET /metrics`  — the registry in Prometheus text format
 *                        (obs/export.h), after running the registered
 *                        collector so in-flight runs publish live
 *                        counters;
 *      `GET /healthz`  — 200 "ok" liveness probe;
 *      `GET /profilez` — the device execution-profile JSON from the
 *                        registered source, `{}` when nothing is
 *                        streaming.
 *
 * Because handling is per-connection concurrent, a long-lived match
 * session never blocks a scrape: /metrics and an active FEED stream
 * are served on the same port at the same time (the export tests race
 * exactly that).  Connections are capped (kMaxConnections); excess
 * ones are closed at accept, which is the outermost layer of rapidd's
 * admission control.
 *
 * This is still deliberately not a web server: HTTP requests are
 * parsed just enough to route a GET line and responses always close
 * the connection.  The server binds 127.0.0.1 only (neither telemetry
 * nor the match protocol is an ingress surface); port 0 picks an
 * ephemeral port, readable via port() and optionally written to the
 * file named by the RAPID_PORT_FILE environment variable so tests and
 * scripts can find the target.  SIGINT/SIGTERM are blocked on the
 * listener and handler threads so fatal signals always land on a
 * thread whose staged-telemetry state is coherent (see obs/obs.h).
 */
#ifndef RAPID_OBS_HTTP_H
#define RAPID_OBS_HTTP_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <thread>

namespace rapid::obs {

class MetricsServer {
  public:
    /** Connections beyond this are closed immediately at accept. */
    static constexpr size_t kMaxConnections = 128;

    MetricsServer() = default;
    ~MetricsServer();

    MetricsServer(const MetricsServer &) = delete;
    MetricsServer &operator=(const MetricsServer &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral) and start the accept
     * thread.  Writes the bound port to $RAPID_PORT_FILE when set.
     * @return false with a message in @p error on failure.
     */
    bool start(uint16_t port, std::string *error = nullptr);

    /**
     * Stop accepting, shut down every active connection, and join all
     * handler threads (idempotent).  Stream handlers observe their
     * socket failing and are expected to unwind promptly.
     */
    void stop();

    bool running() const { return _running; }

    /** The bound port (0 before start()). */
    uint16_t port() const { return _port; }

    /** "http://127.0.0.1:<port>" for log lines. */
    std::string url() const;

    /** Requests served since start (any route or protocol). */
    uint64_t requestCount() const;

    /**
     * Hook run before each /metrics or /profilez render — e.g.
     * host::Device::publishLive(), which flushes in-flight run deltas
     * into the registry so scrapes see live sim.* counters.
     */
    void setCollector(std::function<void()> collector);

    /** Body supplier for /profilez (JSON); default "{}". */
    void setProfileSource(std::function<std::string()> source);

    /**
     * Handler invoked on a connection's thread when the connection's
     * first bytes equal @p magic (exactly 4 bytes).  @p preface is
     * whatever was already read from the socket *including* the magic;
     * the handler must consume it before reading more from the fd.
     * The fd stays owned by the server — the handler must not close
     * it, just return when the conversation is over.
     */
    using StreamHandler =
        std::function<void(int fd, std::string_view preface)>;
    void setStreamHandler(std::string magic, StreamHandler handler);

  private:
    /** One accepted connection and the thread serving it. */
    struct Connection {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void serveLoop();
    void handleConnection(Connection *connection);
    void handleHttp(int fd, std::string request);
    std::string buildResponse(const std::string &request_line);
    /** Join and drop finished handler threads (accept-loop thread). */
    void reapFinished();

    int _listenFd = -1;
    uint16_t _port = 0;
    std::thread _thread;
    bool _running = false;

    mutable std::mutex _hookMutex;
    std::function<void()> _collector;
    std::function<std::string()> _profileSource;
    std::string _streamMagic;
    StreamHandler _streamHandler;

    mutable std::mutex _connMutex;
    std::list<Connection> _connections;

    mutable std::mutex _statMutex;
    uint64_t _requests = 0;
};

} // namespace rapid::obs

#endif // RAPID_OBS_HTTP_H
