/**
 * @file
 * Minimal blocking HTTP listener serving the observability plane.
 *
 * One background thread, one connection at a time, three routes:
 *
 *  - `GET /metrics`  — the registry in Prometheus text format
 *                      (obs/export.h), after running the registered
 *                      collector so in-flight runs publish live
 *                      counters;
 *  - `GET /healthz`  — 200 "ok" liveness probe;
 *  - `GET /profilez` — the device execution-profile JSON (heatmap,
 *                      activity series) from the registered source,
 *                      `{}` when nothing is streaming.
 *
 * This is deliberately not a web server: requests are parsed just
 * enough to route a GET line, responses always close the connection,
 * and the accept loop is blocking — a scrape every few seconds from
 * one Prometheus instance is the design load.  `rapidc run
 * --listen=PORT` (RAPID_LISTEN) keeps a MetricsServer alive for the
 * duration of a stream; the future `rapidd` daemon mounts the same
 * three routes verbatim.
 *
 * The server binds 127.0.0.1 only (telemetry is not an ingress
 * surface); port 0 picks an ephemeral port, readable via port() and
 * optionally written to the file named by the RAPID_PORT_FILE
 * environment variable so tests and scripts can find the scrape
 * target.  SIGINT/SIGTERM are blocked on the listener thread so fatal
 * signals always land on a thread whose staged-telemetry state is
 * coherent (see obs/obs.h).
 */
#ifndef RAPID_OBS_HTTP_H
#define RAPID_OBS_HTTP_H

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace rapid::obs {

class MetricsServer {
  public:
    MetricsServer() = default;
    ~MetricsServer();

    MetricsServer(const MetricsServer &) = delete;
    MetricsServer &operator=(const MetricsServer &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral) and start the accept
     * thread.  Writes the bound port to $RAPID_PORT_FILE when set.
     * @return false with a message in @p error on failure.
     */
    bool start(uint16_t port, std::string *error = nullptr);

    /** Stop accepting and join the thread (idempotent). */
    void stop();

    bool running() const { return _running; }

    /** The bound port (0 before start()). */
    uint16_t port() const { return _port; }

    /** "http://127.0.0.1:<port>" for log lines. */
    std::string url() const;

    /** Requests served since start (any route). */
    uint64_t requestCount() const;

    /**
     * Hook run before each /metrics or /profilez render — e.g.
     * host::Device::publishLive(), which flushes in-flight run deltas
     * into the registry so scrapes see live sim.* counters.
     */
    void setCollector(std::function<void()> collector);

    /** Body supplier for /profilez (JSON); default "{}". */
    void setProfileSource(std::function<std::string()> source);

  private:
    void serveLoop();
    void handleConnection(int fd);
    std::string buildResponse(const std::string &request_line);

    int _listenFd = -1;
    uint16_t _port = 0;
    std::thread _thread;
    bool _running = false;

    mutable std::mutex _hookMutex;
    std::function<void()> _collector;
    std::function<std::string()> _profileSource;

    mutable std::mutex _statMutex;
    uint64_t _requests = 0;
};

} // namespace rapid::obs

#endif // RAPID_OBS_HTTP_H
