/**
 * @file
 * Prometheus text-format (exposition format 0.0.4) rendering of the
 * metrics registry.
 *
 * The dotted registry names map onto Prometheus conventions:
 *
 *  - counters:   `sim.cycles`      → `rapid_sim_cycles_total`
 *  - gauges:     `pnr.blocks`      → `rapid_pnr_blocks`
 *  - histograms: `phase.parse_ms`  → summary family
 *        `rapid_phase_parse_ms{quantile="0.5"|"0.95"}`
 *        `rapid_phase_parse_ms_sum` / `_count`
 *
 * plus one `rapid_build_info{version=...,host=...,kernel_tier=...} 1`
 * gauge carrying build/host provenance.  Every family gets `# HELP`
 * and `# TYPE` lines; renderings end with a newline as the format
 * requires.
 *
 * validExposition() is the strict parser the tests round-trip scrapes
 * through: line grammar, metric/label name charsets, quoted label
 * escapes, numeric sample values, TYPE-before-sample ordering, and
 * no duplicate TYPE per family.  It accepts exactly the subset of the
 * format the exporter (or any well-behaved exporter) should emit.
 */
#ifndef RAPID_OBS_EXPORT_H
#define RAPID_OBS_EXPORT_H

#include <string>
#include <string_view>

namespace rapid::obs {

/**
 * Map a dotted registry name to a Prometheus metric name: `rapid_`
 * prefix, invalid characters folded to '_'.  Suffixes (`_total`,
 * `_sum`, ...) are the renderer's job, not this function's.
 */
std::string promName(std::string_view dotted);

/** Escape a label value (backslash, double quote, newline). */
std::string promLabelEscape(std::string_view value);

/**
 * The whole registry (counters, gauges, histogram summaries) plus the
 * `rapid_build_info` provenance gauge, in exposition format 0.0.4.
 */
std::string renderPrometheus();

/**
 * Strictly validate exposition-format text.
 * @return true when every line parses; otherwise false with a
 * line-numbered message in @p error (when non-null).
 */
bool validExposition(std::string_view text,
                     std::string *error = nullptr);

} // namespace rapid::obs

#endif // RAPID_OBS_EXPORT_H
