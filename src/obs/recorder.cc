#include "obs/recorder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>

#include <sys/stat.h>

#include "obs/fingerprint.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "support/logging.h"
#include "support/strings.h"

namespace rapid::obs {

namespace {

constexpr uint64_t kDefaultMaxBytes = 8ull << 20;
/** Below this a single fat line could rotate forever. */
constexpr uint64_t kMinMaxBytes = 4096;

std::string
jsonQuote(const std::string &text)
{
    std::string out = "\"";
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "0";
    return strprintf("%.12g", value);
}

std::string
utcTimestamp()
{
    std::time_t now = std::time(nullptr);
    std::tm parts{};
    gmtime_r(&now, &parts);
    char buffer[32];
    std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ",
                  &parts);
    return buffer;
}

} // namespace

FlightRecorder &
FlightRecorder::instance()
{
    static FlightRecorder recorder;
    return recorder;
}

FlightRecorder::FlightRecorder(std::string path, uint64_t maxBytes)
    : _path(std::move(path)),
      _maxBytes(std::max(maxBytes, kMinMaxBytes))
{
}

FlightRecorder::FlightRecorder()
{
    _maxBytes = kDefaultMaxBytes;
    if (const char *cap = std::getenv("RAPID_FLIGHTLOG_MAX_BYTES")) {
        char *end = nullptr;
        unsigned long long parsed = std::strtoull(cap, &end, 10);
        if (end != nullptr && *end == '\0' && parsed > 0)
            _maxBytes = std::max<uint64_t>(parsed, kMinMaxBytes);
    }

    if (const char *override_path = std::getenv("RAPID_FLIGHTLOG")) {
        if (*override_path == '\0' ||
            std::string(override_path) == "off") {
            return; // explicitly disabled
        }
        _path = override_path;
        return;
    }
    const char *home = std::getenv("HOME");
    if (home == nullptr || *home == '\0')
        return; // nowhere sensible to write
    std::string dir = std::string(home) + "/.rapid";
    ::mkdir(dir.c_str(), 0755); // EEXIST is the common case
    _path = dir + "/flightlog.jsonl";
}

std::string
FlightRecorder::renderLine(const FlightRecord &record) const
{
    const RegistrySnapshot snap =
        MetricsRegistry::instance().snapshot();

    std::string out = "{";
    out += "\"ts\":" + jsonQuote(utcTimestamp());
    out += ",\"command\":" + jsonQuote(record.command);
    out += ",\"program\":" + jsonQuote(record.program);
    out += ",\"git\":" + jsonQuote(gitDescribe());
    out += ",\"source_key\":" + jsonQuote(record.sourceKey);
    out += ",\"engine\":" + jsonQuote(record.engine);
    out += ",\"kernel\":" + jsonQuote(record.kernel);
    out += strprintf(",\"threads\":%u", record.threads);
    out += strprintf(",\"shards\":%u", record.shards);
    out += strprintf(",\"exit_code\":%d", record.exitCode);
    out += ",\"wall_ms\":" + jsonNumber(record.wallMs);
    out += strprintf(
        ",\"input_bytes\":%llu",
        static_cast<unsigned long long>(record.inputBytes));
    out += strprintf(",\"reports\":%llu",
                     static_cast<unsigned long long>(record.reports));
    out += std::string(",\"interrupted\":") +
           (record.interrupted ? "true" : "false");
    out += ",\"host\":" + hostFingerprint().toJson();

    out += ",\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : snap.counters) {
        if (!first)
            out += ',';
        first = false;
        out += jsonQuote(name) +
               strprintf(":%llu",
                         static_cast<unsigned long long>(value));
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : snap.gauges) {
        if (!first)
            out += ',';
        first = false;
        out += jsonQuote(name) + ":" + jsonNumber(value);
    }
    out += "},\"phases\":{";
    first = true;
    for (const auto &[name, hist] : snap.histograms) {
        if (!startsWith(name, "phase."))
            continue;
        if (!first)
            out += ',';
        first = false;
        out += jsonQuote(name) + ":" + jsonNumber(hist.sum);
    }
    out += "}}\n";
    return out;
}

void
FlightRecorder::rotateIfNeeded(size_t incoming)
{
    struct stat info{};
    if (::stat(_path.c_str(), &info) != 0)
        return; // nothing there yet
    if (static_cast<uint64_t>(info.st_size) + incoming <= _maxBytes)
        return;
    const std::string rotated = _path + ".1";
    if (std::rename(_path.c_str(), rotated.c_str()) != 0)
        logWarn("obs", "flightlog rotation to " + rotated + " failed");
}

bool
FlightRecorder::append(const FlightRecord &record)
{
    // Whatever happens next, the signal path must not double-log a
    // line for an invocation that reached its normal exit.
    clearSignalFile(StagedFile::FlightLog);
    if (!enabled())
        return false;
    const std::string line = renderLine(record);
    rotateIfNeeded(line.size());
    std::ofstream out(_path,
                      std::ios::binary | std::ios::app);
    out << line;
    out.flush();
    if (!out) {
        logWarn("obs", "cannot append flight record to " + _path);
        return false;
    }
    return true;
}

void
FlightRecorder::stage(FlightRecord record)
{
    if (!enabled())
        return;
    record.interrupted = true;
    stageSignalFile(StagedFile::FlightLog, _path, renderLine(record),
                    /*append=*/true);
}

} // namespace rapid::obs
