#include "obs/trace.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "support/strings.h"
#include "support/thread.h"

namespace rapid::obs {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point
traceEpoch()
{
    static const Clock::time_point epoch = Clock::now();
    return epoch;
}

/** Per-thread span nesting depth. */
thread_local uint32_t t_depth = 0;

} // namespace

uint64_t
traceNowUs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - traceEpoch())
            .count());
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::record(TraceEvent event)
{
    std::lock_guard<std::mutex> guard(_mutex);
    if (_events.size() >= kMaxEvents) {
        ++_dropped;
        return;
    }
    _events.push_back(std::move(event));
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _events;
}

size_t
Tracer::size() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _events.size();
}

uint64_t
Tracer::dropped() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _dropped;
}

std::string
Tracer::toChromeJson() const
{
    std::vector<TraceEvent> events = this->events();
    std::string out = "{\n\"traceEvents\": [";
    bool first = true;
    for (const TraceEvent &event : events) {
        out += first ? "\n" : ",\n";
        first = false;
        out += strprintf(
            "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
            "\"ts\": %llu, \"dur\": %llu, \"pid\": 1, \"tid\": %u}",
            event.name.c_str(), event.category.c_str(),
            static_cast<unsigned long long>(event.startUs),
            static_cast<unsigned long long>(event.durationUs),
            event.tid);
    }
    out += first ? "],\n" : "\n],\n";
    out += "\"displayTimeUnit\": \"ms\"\n}\n";
    return out;
}

std::string
Tracer::phaseTree() const
{
    std::vector<TraceEvent> events = this->events();
    // Spans record at scope exit (children before parents); rebuild
    // document order: by thread, then start time, then shallow first.
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         if (a.startUs != b.startUs)
                             return a.startUs < b.startUs;
                         return a.depth < b.depth;
                     });
    std::string out;
    uint32_t tid = 0;
    bool first_thread = true;
    for (const TraceEvent &event : events) {
        if (first_thread || event.tid != tid) {
            tid = event.tid;
            first_thread = false;
            out += strprintf("thread %u\n", tid);
        }
        std::string label(2 * (event.depth + 1), ' ');
        label += event.name;
        if (label.size() < 34)
            label.resize(34, ' ');
        out += strprintf(
            "%s %10.3f ms\n", label.c_str(),
            static_cast<double>(event.durationUs) / 1e3);
    }
    return out;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> guard(_mutex);
    _events.clear();
    _dropped = 0;
}

Span::Span(const char *name, const char *category)
    : _name(name), _category(category)
{
    if (!telemetryEnabled())
        return;
    _active = true;
    _depth = t_depth++;
    _startUs = traceNowUs();
}

Span::~Span()
{
    if (!_active)
        return;
    const uint64_t duration = traceNowUs() - _startUs;
    --t_depth;
    if (tracingEnabled()) {
        TraceEvent event;
        event.name = _name;
        event.category = _category;
        event.startUs = _startUs;
        event.durationUs = duration;
        event.tid = currentThreadId();
        event.depth = _depth;
        Tracer::instance().record(std::move(event));
    }
    if (statsEnabled()) {
        MetricsRegistry::instance()
            .histogram(std::string("phase.") + _name + "_ms")
            .record(static_cast<double>(duration) / 1e3);
    }
}

} // namespace rapid::obs
