/**
 * @file
 * Process-wide metrics registry: counters, gauges, and histograms.
 *
 * Every layer of the pipeline (compiler, optimizer, P&R, simulators,
 * host driver, benches) records its measurements here under dotted
 * lowercase names — `sim.cycles`, `phase.parse_ms`, `pnr.blocks` — so
 * one `--stats=file.json` dump shows the whole run.  See
 * docs/observability.md for the naming conventions.
 *
 * Thread-safety: counters and gauges are single atomics; histograms
 * take a short internal lock per record; registry lookups lock the name
 * map but return stable references, so hot paths should look a metric
 * up once and keep the reference.
 *
 * The registry itself is always available and costs nothing unless
 * something records into it; the pipeline instrumentation additionally
 * gates its recording on obs::statsEnabled() (see obs/obs.h) so the
 * default path stays free of even the bookkeeping work.
 */
#ifndef RAPID_OBS_METRICS_H
#define RAPID_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rapid::obs {

/** A monotonically increasing event count. */
class Counter {
  public:
    void
    add(uint64_t n = 1)
    {
        _value.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> _value{0};
};

/** A last-write-wins floating-point measurement. */
class Gauge {
  public:
    void set(double value);
    double value() const;

  private:
    /** Double bits stored in an atomic word (atomic<double> CAS loops
     *  are not needed for plain set/get). */
    std::atomic<uint64_t> _bits{0};
};

/** Summary of a histogram's samples at one point in time. */
struct HistogramSnapshot {
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double mean = 0;
    double p50 = 0;
    double p95 = 0;
};

/**
 * A sample distribution over log-spaced (HDR-style) buckets.
 *
 * Values are counted into geometric buckets growing by kGrowth per
 * step (bucket i covers [kGrowth^i, kGrowth^(i+1))), so memory is
 * bounded by the dynamic range of the data — at most a few thousand
 * buckets over the whole double range — no matter how many samples a
 * week-long stream records.  Quantiles follow the nearest-rank rule
 * (rank round(q * (count - 1))) over the bucket counts and return the
 * geometric midpoint of the selected bucket clamped to [min, max],
 * which bounds the relative quantile error by sqrt(kGrowth) - 1
 * (< 1%).  count/sum/min/max/mean remain exact.
 *
 * Non-positive samples (timings never produce them, rate deltas can)
 * share one underflow bucket whose representative is the exact
 * minimum.
 */
class Histogram {
  public:
    /** Bucket width ratio; sqrt(1.02) - 1 ≈ 0.995% quantile error. */
    static constexpr double kGrowth = 1.02;
    /** Index clamp: 1.02^±2400 ≈ 10^±20 covers any sane measurement. */
    static constexpr int kMaxBucketIndex = 2400;

    /** Bucket index for @p value (> 0), clamped to ±kMaxBucketIndex. */
    static int bucketIndex(double value);
    /** Inclusive lower bound of bucket @p index (kGrowth^index). */
    static double bucketLowerBound(int index);

    void record(double value);
    HistogramSnapshot snapshot() const;

    /** Distinct occupied buckets (tests pin the memory bound). */
    size_t bucketCount() const;

  private:
    mutable std::mutex _mutex;
    /** Occupied positive-value buckets: index → sample count. */
    std::map<int, uint64_t> _buckets;
    /** Samples ≤ 0 (kept out of the log-spaced range). */
    uint64_t _zeroOrNegative = 0;
    uint64_t _count = 0;
    double _sum = 0;
    double _min = 0;
    double _max = 0;
};

/** Point-in-time copy of every metric, in name order per kind. */
struct RegistrySnapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/**
 * The process-wide name → metric map.
 *
 * Returned references stay valid for the registry's lifetime (metrics
 * are heap-allocated and never removed; clear() is test-only and must
 * not race live references).
 */
class MetricsRegistry {
  public:
    static MetricsRegistry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Does any metric exist yet? */
    bool empty() const;

    /** Copy every metric's current value (renderers work lock-free). */
    RegistrySnapshot snapshot() const;

    /**
     * The whole registry as one JSON object:
     * {"counters":{...},"gauges":{...},"histograms":{name:
     * {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,
     * "p95":..}}}.  @p extra appends further (key, pre-rendered JSON)
     * sections, e.g. a simulator execution profile.
     */
    std::string
    toJson(const std::vector<std::pair<std::string, std::string>>
               &extra = {}) const;

    /** Test-only: drop every metric. */
    void clear();

  private:
    MetricsRegistry() = default;

    mutable std::mutex _mutex;
    std::map<std::string, std::unique_ptr<Counter>> _counters;
    std::map<std::string, std::unique_ptr<Gauge>> _gauges;
    std::map<std::string, std::unique_ptr<Histogram>> _histograms;
};

} // namespace rapid::obs

#endif // RAPID_OBS_METRICS_H
