#include "obs/fingerprint.h"

#include <thread>

#include "support/strings.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif
#if defined(__linux__)
#include <sched.h>
#endif
#if defined(__APPLE__) || defined(__linux__)
#include <sys/utsname.h>
#endif

namespace rapid::obs {

namespace {

/** Best SIMD tier the CPU supports, in match_kernels.h naming. */
std::string
detectKernelTier()
{
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx2"))
        return "avx2";
    if (__builtin_cpu_supports("sse2"))
        return "sse2";
#endif
    return "baseline";
}

std::string
detectArch()
{
#if defined(__APPLE__) || defined(__linux__)
    struct utsname names;
    if (uname(&names) == 0)
        return names.machine;
#endif
#if defined(__x86_64__)
    return "x86_64";
#elif defined(__aarch64__)
    return "aarch64";
#else
    return "unknown";
#endif
}

HostFingerprint
computeFingerprint()
{
    HostFingerprint fp;
    unsigned fallback = std::thread::hardware_concurrency();
    if (fallback == 0)
        fallback = 1;
    fp.configuredCores = fallback;
    fp.onlineCores = fallback;
    fp.affinityCores = fallback;
#if defined(__unix__) || defined(__APPLE__)
    long configured = sysconf(_SC_NPROCESSORS_CONF);
    if (configured > 0)
        fp.configuredCores = static_cast<unsigned>(configured);
    long online = sysconf(_SC_NPROCESSORS_ONLN);
    if (online > 0)
        fp.onlineCores = static_cast<unsigned>(online);
#endif
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
        fp.affinityCores = static_cast<unsigned>(CPU_COUNT(&set));
        // Hex nibbles, least-significant cpu first, trailing zero
        // nibbles trimmed — "f" means cpus 0-3.
        std::string mask;
        const int limit = 256;
        for (int base = 0; base < limit; base += 4) {
            int nibble = 0;
            for (int bit = 0; bit < 4; ++bit) {
                if (CPU_ISSET(base + bit, &set))
                    nibble |= 1 << bit;
            }
            mask += "0123456789abcdef"[nibble];
        }
        while (mask.size() > 1 && mask.back() == '0')
            mask.pop_back();
        fp.affinityMask = mask;
    }
#endif
    if (fp.affinityMask.empty())
        fp.affinityMask = "unknown";
    fp.kernelTier = detectKernelTier();
    fp.arch = detectArch();
    return fp;
}

} // namespace

std::string
HostFingerprint::id() const
{
    return strprintf("%uc%uo%ua-%s-%s", configuredCores, onlineCores,
                     affinityCores, arch.c_str(), kernelTier.c_str());
}

std::string
HostFingerprint::toJson() const
{
    return strprintf(
        "{\"id\": \"%s\", \"configured_cores\": %u, "
        "\"online_cores\": %u, \"affinity_cores\": %u, "
        "\"affinity_mask\": \"%s\", \"kernel_tier\": \"%s\", "
        "\"arch\": \"%s\"}",
        id().c_str(), configuredCores, onlineCores, affinityCores,
        affinityMask.c_str(), kernelTier.c_str(), arch.c_str());
}

const HostFingerprint &
hostFingerprint()
{
    static const HostFingerprint fingerprint = computeFingerprint();
    return fingerprint;
}

std::string
gitDescribe()
{
#ifdef RAPID_GIT_DESCRIBE
    return RAPID_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

} // namespace rapid::obs
