/**
 * @file
 * Telemetry master switches and file export.
 *
 * Two independent facilities share the pipeline's Span instrumentation
 * (see obs/trace.h and obs/metrics.h):
 *
 *  - *stats*: the metrics registry — per-phase wall times, simulator
 *    activation/report counters, batch-engine thread utilization;
 *  - *tracing*: the Chrome trace_event span buffer.
 *
 * Both are OFF by default; every instrumentation site guards on the
 * relevant flag with one relaxed atomic load, so library consumers and
 * the hot simulation loops pay nothing.  The CLI tools enable them via
 * `--stats=<file>` / `--trace=<file>`; `initFromEnv()` provides the
 * `RAPID_STATS=<file>` / `RAPID_TRACE=<file>` fallback for benches,
 * tests, and embedding applications.
 */
#ifndef RAPID_OBS_OBS_H
#define RAPID_OBS_OBS_H

#include <atomic>
#include <string>

namespace rapid::obs {

namespace detail {
extern std::atomic<bool> g_stats;
extern std::atomic<bool> g_trace;
} // namespace detail

/** Is metrics collection on?  One relaxed load; safe in hot loops. */
inline bool
statsEnabled()
{
    return detail::g_stats.load(std::memory_order_relaxed);
}

/** Is span tracing on?  One relaxed load; safe in hot loops. */
inline bool
tracingEnabled()
{
    return detail::g_trace.load(std::memory_order_relaxed);
}

/** Is either facility on? */
inline bool
telemetryEnabled()
{
    return statsEnabled() || tracingEnabled();
}

void setStatsEnabled(bool enabled);
void setTracingEnabled(bool enabled);

/**
 * Enable facilities from the environment: RAPID_STATS=<path> turns on
 * stats with that output path, RAPID_TRACE=<path> tracing likewise.
 * Explicit setter calls (e.g. from CLI flags) win if made after.
 */
void initFromEnv();

/** Output paths remembered for flush(); empty = do not write. */
void setStatsPath(const std::string &path);
void setTracePath(const std::string &path);
const std::string &statsPath();
const std::string &tracePath();

/**
 * Write the metrics registry as JSON to @p path.
 * @return false (with a log warning) when the file cannot be written.
 */
bool writeStats(const std::string &path);

/** Write the span buffer as Chrome trace_event JSON to @p path. */
bool writeTrace(const std::string &path);

/**
 * Write whichever output paths are set (CLI flags or environment).
 * Called by the tools once per process, after the work is done.
 * @return false when any requested write failed.
 */
bool flush();

/*
 * Signal-flush staging.
 *
 * A SIGINT/SIGTERM handler may only call async-signal-safe functions —
 * no malloc, no ofstream, no registry locks — so the telemetry files
 * cannot be rendered *inside* the handler.  Instead the main thread
 * pre-renders each file at quiescent points (post-compile, pre-stream,
 * post-stream) into a small set of staged slots; the handler just
 * open()/write()s whichever slots are populated and _Exit()s with
 * 128 + signo.  A per-slot busy flag makes a signal that lands mid-
 * stage skip that slot rather than read a half-written buffer; worker
 * threads (e.g. the metrics listener) keep SIGINT/SIGTERM blocked so
 * the handler always runs on the staging thread.
 */

/** Staged-file slots the signal handler knows how to write. */
enum class StagedFile { Stats = 0, Trace = 1, FlightLog = 2 };

/** Install the SIGINT/SIGTERM flush handler (idempotent). */
void installSignalFlush();

/**
 * Stage @p content for @p slot: on a fatal signal the handler writes
 * it to @p path (O_APPEND when @p append, truncating otherwise).
 * Call only from the thread that receives signals.
 */
void stageSignalFile(StagedFile slot, const std::string &path,
                     const std::string &content, bool append = false);

/** Drop a staged slot (e.g. after the normal-exit path wrote it). */
void clearSignalFile(StagedFile slot);

/**
 * Pre-render the current stats and trace outputs into their staged
 * slots (no-ops for unset paths).  Cheap enough to call at every
 * quiescent point of a run.
 */
void stageTelemetrySnapshot();

} // namespace rapid::obs

#endif // RAPID_OBS_OBS_H
