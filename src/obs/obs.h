/**
 * @file
 * Telemetry master switches and file export.
 *
 * Two independent facilities share the pipeline's Span instrumentation
 * (see obs/trace.h and obs/metrics.h):
 *
 *  - *stats*: the metrics registry — per-phase wall times, simulator
 *    activation/report counters, batch-engine thread utilization;
 *  - *tracing*: the Chrome trace_event span buffer.
 *
 * Both are OFF by default; every instrumentation site guards on the
 * relevant flag with one relaxed atomic load, so library consumers and
 * the hot simulation loops pay nothing.  The CLI tools enable them via
 * `--stats=<file>` / `--trace=<file>`; `initFromEnv()` provides the
 * `RAPID_STATS=<file>` / `RAPID_TRACE=<file>` fallback for benches,
 * tests, and embedding applications.
 */
#ifndef RAPID_OBS_OBS_H
#define RAPID_OBS_OBS_H

#include <atomic>
#include <string>

namespace rapid::obs {

namespace detail {
extern std::atomic<bool> g_stats;
extern std::atomic<bool> g_trace;
} // namespace detail

/** Is metrics collection on?  One relaxed load; safe in hot loops. */
inline bool
statsEnabled()
{
    return detail::g_stats.load(std::memory_order_relaxed);
}

/** Is span tracing on?  One relaxed load; safe in hot loops. */
inline bool
tracingEnabled()
{
    return detail::g_trace.load(std::memory_order_relaxed);
}

/** Is either facility on? */
inline bool
telemetryEnabled()
{
    return statsEnabled() || tracingEnabled();
}

void setStatsEnabled(bool enabled);
void setTracingEnabled(bool enabled);

/**
 * Enable facilities from the environment: RAPID_STATS=<path> turns on
 * stats with that output path, RAPID_TRACE=<path> tracing likewise.
 * Explicit setter calls (e.g. from CLI flags) win if made after.
 */
void initFromEnv();

/** Output paths remembered for flush(); empty = do not write. */
void setStatsPath(const std::string &path);
void setTracePath(const std::string &path);
const std::string &statsPath();
const std::string &tracePath();

/**
 * Write the metrics registry as JSON to @p path.
 * @return false (with a log warning) when the file cannot be written.
 */
bool writeStats(const std::string &path);

/** Write the span buffer as Chrome trace_event JSON to @p path. */
bool writeTrace(const std::string &path);

/**
 * Write whichever output paths are set (CLI flags or environment).
 * Called by the tools once per process, after the work is done.
 * @return false when any requested write failed.
 */
bool flush();

} // namespace rapid::obs

#endif // RAPID_OBS_OBS_H
