#include "obs/http.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "support/logging.h"
#include "support/strings.h"

namespace rapid::obs {

namespace {

std::string
httpResponse(const char *status, const char *content_type,
             const std::string &body)
{
    return strprintf("HTTP/1.1 %s\r\n"
                     "Content-Type: %s\r\n"
                     "Content-Length: %zu\r\n"
                     "Connection: close\r\n"
                     "\r\n",
                     status, content_type, body.size()) +
           body;
}

void
writeAll(int fd, const std::string &data)
{
    size_t sent = 0;
    while (sent < data.size()) {
        ssize_t n =
            ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                   MSG_NOSIGNAL
#else
                   0
#endif
            );
        if (n <= 0)
            return; // peer went away; scrape clients retry
        sent += static_cast<size_t>(n);
    }
}

} // namespace

MetricsServer::~MetricsServer()
{
    stop();
}

bool
MetricsServer::start(uint16_t port, std::string *error)
{
    auto fail = [&](const std::string &message) {
        if (error != nullptr)
            *error = message;
        if (_listenFd >= 0) {
            ::close(_listenFd);
            _listenFd = -1;
        }
        return false;
    };
    if (_running)
        return fail("metrics server already running");

    _listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (_listenFd < 0)
        return fail(strprintf("socket: %s", std::strerror(errno)));
    int one = 1;
    ::setsockopt(_listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(_listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        return fail(strprintf("bind 127.0.0.1:%u: %s",
                              static_cast<unsigned>(port),
                              std::strerror(errno)));
    }
    if (::listen(_listenFd, 64) != 0)
        return fail(strprintf("listen: %s", std::strerror(errno)));

    socklen_t len = sizeof(addr);
    if (::getsockname(_listenFd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        return fail(strprintf("getsockname: %s",
                              std::strerror(errno)));
    }
    _port = ntohs(addr.sin_port);

    if (const char *port_file = std::getenv("RAPID_PORT_FILE")) {
        if (*port_file != '\0') {
            std::ofstream out(port_file, std::ios::binary);
            out << _port << "\n";
            if (!out) {
                logWarn("obs", std::string("cannot write port file ") +
                                   port_file);
            }
        }
    }

    // Fatal signals must land on the main thread, whose staged
    // telemetry buffers are mutated only at quiescent points — never
    // on the listener or a connection handler (threads spawned from
    // the listener inherit its mask; see obs/obs.h signal staging).
    sigset_t block, previous;
    sigemptyset(&block);
    sigaddset(&block, SIGINT);
    sigaddset(&block, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &block, &previous);
    _running = true;
    _thread = std::thread([this] { serveLoop(); });
    pthread_sigmask(SIG_SETMASK, &previous, nullptr);
    return true;
}

void
MetricsServer::stop()
{
    if (!_running)
        return;
    _running = false;
    // Wake the blocking accept(); Linux returns EINVAL/ECONNABORTED
    // after shutdown on a listening socket.
    ::shutdown(_listenFd, SHUT_RDWR);
    ::close(_listenFd);
    _listenFd = -1;
    if (_thread.joinable())
        _thread.join();
    // Fail every in-flight connection so its handler unwinds, then
    // join.  Handlers never close their fd themselves, so the fd is
    // valid to shut down here.
    {
        std::lock_guard<std::mutex> guard(_connMutex);
        for (Connection &connection : _connections) {
            if (connection.fd >= 0)
                ::shutdown(connection.fd, SHUT_RDWR);
        }
    }
    for (;;) {
        Connection *victim = nullptr;
        {
            std::lock_guard<std::mutex> guard(_connMutex);
            if (_connections.empty())
                break;
            victim = &_connections.front();
        }
        if (victim->thread.joinable())
            victim->thread.join();
        std::lock_guard<std::mutex> guard(_connMutex);
        if (victim->fd >= 0)
            ::close(victim->fd);
        _connections.pop_front();
    }
}

std::string
MetricsServer::url() const
{
    return strprintf("http://127.0.0.1:%u",
                     static_cast<unsigned>(_port));
}

uint64_t
MetricsServer::requestCount() const
{
    std::lock_guard<std::mutex> guard(_statMutex);
    return _requests;
}

void
MetricsServer::setCollector(std::function<void()> collector)
{
    std::lock_guard<std::mutex> guard(_hookMutex);
    _collector = std::move(collector);
}

void
MetricsServer::setProfileSource(std::function<std::string()> source)
{
    std::lock_guard<std::mutex> guard(_hookMutex);
    _profileSource = std::move(source);
}

void
MetricsServer::setStreamHandler(std::string magic,
                                StreamHandler handler)
{
    std::lock_guard<std::mutex> guard(_hookMutex);
    _streamMagic = std::move(magic);
    _streamHandler = std::move(handler);
}

void
MetricsServer::reapFinished()
{
    std::lock_guard<std::mutex> guard(_connMutex);
    for (auto it = _connections.begin(); it != _connections.end();) {
        if (!it->done) {
            ++it;
            continue;
        }
        if (it->thread.joinable())
            it->thread.join();
        if (it->fd >= 0)
            ::close(it->fd);
        it = _connections.erase(it);
    }
}

void
MetricsServer::serveLoop()
{
    while (_running) {
        int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (!_running)
                break;
            if (errno == EINTR)
                continue;
            break; // listening socket is gone
        }
        // Both protocols on this port are request/response with small
        // writes; Nagle + delayed ACK would add ~40 ms per exchange.
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        reapFinished();
        Connection *connection = nullptr;
        {
            std::lock_guard<std::mutex> guard(_connMutex);
            if (_connections.size() >= kMaxConnections) {
                // Over the cap: refuse at the door.  Match-protocol
                // admission control with real errors lives one layer
                // up (serve::Server); this is the hard backstop.
                ::close(fd);
                continue;
            }
            _connections.emplace_back();
            connection = &_connections.back();
            connection->fd = fd;
        }
        connection->thread = std::thread(
            [this, connection] { handleConnection(connection); });
    }
}

void
MetricsServer::handleConnection(Connection *connection)
{
    const int fd = connection->fd;
    std::string magic;
    StreamHandler stream_handler;
    {
        std::lock_guard<std::mutex> guard(_hookMutex);
        magic = _streamMagic;
        stream_handler = _streamHandler;
    }

    // Read enough to classify the protocol.  HTTP scrape requests are
    // one short line; bound slow clients with a receive timeout that
    // the stream handler may later widen.
    timeval timeout{};
    timeout.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                 sizeof(timeout));

    // Read *exactly* enough bytes to classify, never more: a stream
    // handler expects the socket positioned right after the magic.
    std::string head;
    const size_t classify = magic.empty() ? 1 : magic.size();
    char buffer[8];
    while (head.size() < classify) {
        ssize_t n =
            ::recv(fd, buffer,
                   std::min(classify - head.size(), sizeof(buffer)), 0);
        if (n <= 0)
            break;
        head.append(buffer, static_cast<size_t>(n));
    }

    {
        std::lock_guard<std::mutex> guard(_statMutex);
        ++_requests;
    }
    MetricsRegistry::instance().counter("obs.http.requests").add(1);

    if (stream_handler && head.size() >= magic.size() &&
        head.compare(0, magic.size(), magic) == 0) {
        // Match protocol: sessions are long-lived; drop the scrape
        // timeout and hand the connection over.
        timeval none{};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &none,
                     sizeof(none));
        stream_handler(fd, head);
        // The session is over; send FIN now so the peer sees EOF
        // immediately (the fd itself is reaped later).
        ::shutdown(fd, SHUT_RDWR);
    } else if (!head.empty()) {
        handleHttp(fd, std::move(head));
    }
    connection->done = true;
}

void
MetricsServer::handleHttp(int fd, std::string request)
{
    // Read until the end of the request head (or a sane cap); only
    // the request line matters.
    char buffer[2048];
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.find('\n') == std::string::npos &&
           request.size() < 16384) {
        ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0)
            break;
        request.append(buffer, static_cast<size_t>(n));
    }
    size_t eol = request.find('\n');
    std::string request_line =
        eol == std::string::npos ? request : request.substr(0, eol);
    if (!request_line.empty() && request_line.back() == '\r')
        request_line.pop_back();

    writeAll(fd, buildResponse(request_line));
    // Responses close the connection; shut down writes so the client
    // sees EOF even while stop() is still to come.
    ::shutdown(fd, SHUT_WR);
}

std::string
MetricsServer::buildResponse(const std::string &request_line)
{
    std::vector<std::string> parts = split(request_line, ' ');
    if (parts.size() < 2) {
        return httpResponse("400 Bad Request",
                            "text/plain; charset=utf-8",
                            "bad request\n");
    }
    const std::string &method = parts[0];
    std::string path = parts[1];
    if (size_t query = path.find('?'); query != std::string::npos)
        path.resize(query);
    if (method != "GET") {
        return httpResponse("405 Method Not Allowed",
                            "text/plain; charset=utf-8",
                            "only GET is supported\n");
    }

    std::function<void()> collector;
    std::function<std::string()> profile_source;
    {
        std::lock_guard<std::mutex> guard(_hookMutex);
        collector = _collector;
        profile_source = _profileSource;
    }

    if (path == "/metrics") {
        if (collector)
            collector();
        return httpResponse(
            "200 OK", "text/plain; version=0.0.4; charset=utf-8",
            renderPrometheus());
    }
    if (path == "/healthz") {
        return httpResponse("200 OK", "text/plain; charset=utf-8",
                            "ok\n");
    }
    if (path == "/profilez") {
        if (collector)
            collector();
        std::string body =
            profile_source ? profile_source() : std::string("{}");
        if (body.empty())
            body = "{}";
        return httpResponse("200 OK",
                            "application/json; charset=utf-8",
                            body + "\n");
    }
    return httpResponse(
        "404 Not Found", "text/plain; charset=utf-8",
        "routes: /metrics /healthz /profilez\n");
}

} // namespace rapid::obs
