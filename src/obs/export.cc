#include "obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "obs/fingerprint.h"
#include "obs/metrics.h"
#include "support/strings.h"

namespace rapid::obs {

namespace {

/** Sample-value rendering; Prometheus accepts Go-style floats. */
std::string
promNumber(double value)
{
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    return strprintf("%.12g", value);
}

void
appendFamily(std::string &out, const std::string &family,
             const char *type, const char *help)
{
    out += "# HELP " + family + " " + help + "\n";
    out += "# TYPE " + family + " " + type + "\n";
}

bool
validMetricName(std::string_view name)
{
    if (name.empty())
        return false;
    auto first = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) ||
               c == '_' || c == ':';
    };
    auto rest = [&](char c) {
        return first(c) ||
               std::isdigit(static_cast<unsigned char>(c));
    };
    if (!first(name[0]))
        return false;
    for (char c : name.substr(1)) {
        if (!rest(c))
            return false;
    }
    return true;
}

bool
validLabelName(std::string_view name)
{
    if (name.empty() || name[0] == ':')
        return false;
    for (char c : name) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) ||
              c == '_')) {
            return false;
        }
    }
    return std::isdigit(static_cast<unsigned char>(name[0])) == 0;
}

/** State threaded through the per-line validator. */
struct ValidatorState {
    /** family name from the last # TYPE line, "" before any. */
    std::string typedFamily;
    std::string typedKind;
    /** every family that already had a TYPE (duplicates illegal). */
    std::vector<std::string> seenTypes;
};

/** Does @p sample belong to summary/histogram family @p family? */
bool
inFamily(std::string_view sample, std::string_view family,
         std::string_view kind)
{
    if (sample == family)
        return true;
    if (kind == "summary" || kind == "histogram") {
        if (sample.size() > family.size() &&
            startsWith(sample, family)) {
            std::string_view suffix = sample.substr(family.size());
            if (suffix == "_sum" || suffix == "_count")
                return true;
            if (kind == "histogram" && suffix == "_bucket")
                return true;
        }
    }
    return false;
}

bool
parseSampleLine(std::string_view line, ValidatorState &state,
                std::string &message)
{
    // metric_name[{label="value",...}] value [timestamp]
    size_t pos = 0;
    while (pos < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[pos])) ||
            line[pos] == '_' || line[pos] == ':')) {
        ++pos;
    }
    std::string_view name = line.substr(0, pos);
    if (!validMetricName(name)) {
        message = "invalid metric name";
        return false;
    }
    if (!state.typedFamily.empty() &&
        !inFamily(name, state.typedFamily, state.typedKind)) {
        // A sample after a TYPE line must belong to that family until
        // the next TYPE — interleaving families is malformed output.
        message = "sample '" + std::string(name) +
                  "' outside the most recent # TYPE family '" +
                  state.typedFamily + "'";
        return false;
    }
    if (state.typedFamily.empty()) {
        message = "sample '" + std::string(name) +
                  "' before any # TYPE line";
        return false;
    }

    if (pos < line.size() && line[pos] == '{') {
        ++pos;
        bool first = true;
        while (true) {
            if (pos >= line.size()) {
                message = "unterminated label set";
                return false;
            }
            if (line[pos] == '}') {
                ++pos;
                break;
            }
            if (!first) {
                if (line[pos] != ',') {
                    message = "expected ',' between labels";
                    return false;
                }
                ++pos;
            }
            first = false;
            size_t name_start = pos;
            while (pos < line.size() && line[pos] != '=')
                ++pos;
            if (pos >= line.size() ||
                !validLabelName(
                    line.substr(name_start, pos - name_start))) {
                message = "invalid label name";
                return false;
            }
            ++pos; // '='
            if (pos >= line.size() || line[pos] != '"') {
                message = "label value must be quoted";
                return false;
            }
            ++pos;
            while (pos < line.size() && line[pos] != '"') {
                if (line[pos] == '\\') {
                    ++pos;
                    if (pos >= line.size() ||
                        (line[pos] != '\\' && line[pos] != '"' &&
                         line[pos] != 'n')) {
                        message = "bad escape in label value";
                        return false;
                    }
                }
                ++pos;
            }
            if (pos >= line.size()) {
                message = "unterminated label value";
                return false;
            }
            ++pos; // closing '"'
        }
    }

    if (pos >= line.size() || line[pos] != ' ') {
        message = "expected space before sample value";
        return false;
    }
    while (pos < line.size() && line[pos] == ' ')
        ++pos;
    size_t value_start = pos;
    while (pos < line.size() && line[pos] != ' ')
        ++pos;
    std::string value(line.substr(value_start, pos - value_start));
    if (value.empty()) {
        message = "missing sample value";
        return false;
    }
    if (value != "NaN" && value != "+Inf" && value != "-Inf" &&
        value != "Inf") {
        char *end = nullptr;
        std::strtod(value.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            message = "malformed sample value '" + value + "'";
            return false;
        }
    }
    // Optional millisecond timestamp.
    while (pos < line.size() && line[pos] == ' ')
        ++pos;
    if (pos < line.size()) {
        std::string_view stamp = line.substr(pos);
        for (size_t i = 0; i < stamp.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(stamp[i])) &&
                !(i == 0 && stamp[i] == '-')) {
                message = "malformed timestamp";
                return false;
            }
        }
    }
    return true;
}

bool
parseCommentLine(std::string_view line, ValidatorState &state,
                 std::string &message)
{
    // "# HELP name text", "# TYPE name kind", or a plain comment.
    if (!startsWith(line, "# ")) {
        return true; // "#..." bare comment: ignored by parsers
    }
    std::string_view body = line.substr(2);
    if (startsWith(body, "HELP ")) {
        std::string_view rest = body.substr(5);
        size_t space = rest.find(' ');
        std::string_view name =
            space == std::string_view::npos ? rest
                                            : rest.substr(0, space);
        if (!validMetricName(name)) {
            message = "invalid metric name in # HELP";
            return false;
        }
        return true;
    }
    if (startsWith(body, "TYPE ")) {
        std::string_view rest = body.substr(5);
        size_t space = rest.find(' ');
        if (space == std::string_view::npos) {
            message = "# TYPE missing kind";
            return false;
        }
        std::string name(rest.substr(0, space));
        std::string kind(rest.substr(space + 1));
        if (!validMetricName(name)) {
            message = "invalid metric name in # TYPE";
            return false;
        }
        if (kind != "counter" && kind != "gauge" && kind != "summary" &&
            kind != "histogram" && kind != "untyped") {
            message = "unknown metric kind '" + kind + "'";
            return false;
        }
        for (const std::string &seen : state.seenTypes) {
            if (seen == name) {
                message = "duplicate # TYPE for '" + name + "'";
                return false;
            }
        }
        state.seenTypes.push_back(name);
        state.typedFamily = name;
        state.typedKind = kind;
        return true;
    }
    return true; // other comments are legal
}

} // namespace

std::string
promName(std::string_view dotted)
{
    std::string out = "rapid_";
    for (char c : dotted) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += c;
        else
            out += '_';
    }
    return out;
}

std::string
promLabelEscape(std::string_view value)
{
    std::string out;
    for (char c : value) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

std::string
renderPrometheus()
{
    const RegistrySnapshot snap =
        MetricsRegistry::instance().snapshot();
    std::string out;
    out.reserve(4096);

    for (const auto &[name, value] : snap.counters) {
        const std::string family = promName(name) + "_total";
        appendFamily(out, family, "counter",
                     ("registry counter " + name).c_str());
        out += family + " " +
               strprintf("%llu",
                         static_cast<unsigned long long>(value)) +
               "\n";
    }
    for (const auto &[name, value] : snap.gauges) {
        const std::string family = promName(name);
        appendFamily(out, family, "gauge",
                     ("registry gauge " + name).c_str());
        out += family + " " + promNumber(value) + "\n";
    }
    for (const auto &[name, hist] : snap.histograms) {
        const std::string family = promName(name);
        appendFamily(out, family, "summary",
                     ("registry histogram " + name +
                      " (nearest-rank quantiles over log buckets)")
                         .c_str());
        out += family + "{quantile=\"0.5\"} " + promNumber(hist.p50) +
               "\n";
        out += family + "{quantile=\"0.95\"} " + promNumber(hist.p95) +
               "\n";
        out += family + "_sum " + promNumber(hist.sum) + "\n";
        out += family + "_count " +
               strprintf("%llu",
                         static_cast<unsigned long long>(hist.count)) +
               "\n";
    }

    const HostFingerprint &host = hostFingerprint();
    appendFamily(out, "rapid_build_info", "gauge",
                 "build and host provenance (constant 1)");
    out += "rapid_build_info{version=\"" +
           promLabelEscape(gitDescribe()) + "\",host=\"" +
           promLabelEscape(host.id()) + "\",kernel_tier=\"" +
           promLabelEscape(host.kernelTier) + "\",cores=\"" +
           strprintf("%u", host.affinityCores) + "\"} 1\n";
    return out;
}

bool
validExposition(std::string_view text, std::string *error)
{
    auto fail = [&](size_t line_no, const std::string &message) {
        if (error != nullptr) {
            *error = strprintf("line %zu: %s",
                               static_cast<size_t>(line_no),
                               message.c_str());
        }
        return false;
    };
    if (!text.empty() && text.back() != '\n')
        return fail(0, "exposition must end with a newline");

    ValidatorState state;
    size_t line_no = 0;
    size_t pos = 0;
    while (pos < text.size()) {
        ++line_no;
        size_t eol = text.find('\n', pos);
        if (eol == std::string_view::npos)
            eol = text.size();
        std::string_view line = text.substr(pos, eol - pos);
        pos = eol + 1;

        if (line.empty())
            continue;
        std::string message;
        if (line[0] == '#') {
            if (!parseCommentLine(line, state, message))
                return fail(line_no, message);
        } else {
            if (!parseSampleLine(line, state, message))
                return fail(line_no, message);
        }
    }
    return true;
}

} // namespace rapid::obs
