/**
 * @file
 * A minimal XML reader/writer sufficient for ANML documents.
 *
 * Supports elements, attributes, character data, comments, processing
 * instructions, and XML declarations.  It does not implement DTDs,
 * namespaces (prefixes are kept verbatim in names), or external
 * entities — none of which appear in ANML files.  Implemented here to
 * keep the repository dependency-free.
 */
#ifndef RAPID_ANML_XML_H
#define RAPID_ANML_XML_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rapid::anml {

/** One XML element node. */
struct XmlNode {
    std::string name;
    std::map<std::string, std::string> attributes;
    std::vector<std::unique_ptr<XmlNode>> children;
    /** Concatenated character data directly inside this element. */
    std::string text;

    /** Attribute value, or @p fallback when absent. */
    const std::string &attr(const std::string &key,
                            const std::string &fallback = "") const;

    /** True when the attribute is present. */
    bool hasAttr(const std::string &key) const;

    /** First child with the given element name; nullptr when absent. */
    const XmlNode *child(const std::string &name) const;

    /** All children with the given element name. */
    std::vector<const XmlNode *> childrenNamed(const std::string &name)
        const;
};

/**
 * Parse an XML document; returns the root element.
 *
 * @throws rapid::CompileError on malformed input.
 */
std::unique_ptr<XmlNode> parseXml(const std::string &text);

/** Serialize a node tree with 2-space indentation. */
std::string writeXml(const XmlNode &root);

} // namespace rapid::anml

#endif // RAPID_ANML_XML_H
