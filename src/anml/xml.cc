#include "anml/xml.h"

#include <cctype>

#include "support/error.h"
#include "support/strings.h"

namespace rapid::anml {

const std::string &
XmlNode::attr(const std::string &key, const std::string &fallback) const
{
    auto it = attributes.find(key);
    return it == attributes.end() ? fallback : it->second;
}

bool
XmlNode::hasAttr(const std::string &key) const
{
    return attributes.count(key) != 0;
}

const XmlNode *
XmlNode::child(const std::string &name) const
{
    for (const auto &node : children) {
        if (node->name == name)
            return node.get();
    }
    return nullptr;
}

std::vector<const XmlNode *>
XmlNode::childrenNamed(const std::string &name) const
{
    std::vector<const XmlNode *> out;
    for (const auto &node : children) {
        if (node->name == name)
            out.push_back(node.get());
    }
    return out;
}

namespace {

/** Recursive-descent XML scanner over a string buffer. */
class XmlParser {
  public:
    explicit XmlParser(const std::string &text) : _text(text) {}

    std::unique_ptr<XmlNode>
    parseDocument()
    {
        skipMisc();
        auto root = parseElement();
        skipMisc();
        if (_pos != _text.size())
            fail("trailing content after root element");
        return root;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw CompileError("XML: " + msg + " (at byte " +
                           std::to_string(_pos) + ")");
    }

    bool atEnd() const { return _pos >= _text.size(); }
    char peek() const { return atEnd() ? '\0' : _text[_pos]; }

    bool
    consume(const std::string &token)
    {
        if (_text.compare(_pos, token.size(), token) == 0) {
            _pos += token.size();
            return true;
        }
        return false;
    }

    void
    skipSpace()
    {
        while (!atEnd() &&
               std::isspace(static_cast<unsigned char>(_text[_pos]))) {
            ++_pos;
        }
    }

    /** Skip whitespace, comments, PIs, and the XML declaration. */
    void
    skipMisc()
    {
        while (true) {
            skipSpace();
            if (consume("<!--")) {
                size_t end = _text.find("-->", _pos);
                if (end == std::string::npos)
                    fail("unterminated comment");
                _pos = end + 3;
            } else if (consume("<?")) {
                size_t end = _text.find("?>", _pos);
                if (end == std::string::npos)
                    fail("unterminated processing instruction");
                _pos = end + 2;
            } else if (consume("<!DOCTYPE")) {
                size_t end = _text.find('>', _pos);
                if (end == std::string::npos)
                    fail("unterminated DOCTYPE");
                _pos = end + 1;
            } else {
                return;
            }
        }
    }

    static bool
    isNameChar(char c)
    {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
               c == '_' || c == ':' || c == '.';
    }

    std::string
    parseName()
    {
        size_t start = _pos;
        while (!atEnd() && isNameChar(_text[_pos]))
            ++_pos;
        if (_pos == start)
            fail("expected a name");
        return _text.substr(start, _pos - start);
    }

    std::string
    decodeEntities(const std::string &raw)
    {
        std::string out;
        out.reserve(raw.size());
        for (size_t i = 0; i < raw.size(); ++i) {
            if (raw[i] != '&') {
                out.push_back(raw[i]);
                continue;
            }
            size_t semi = raw.find(';', i);
            if (semi == std::string::npos)
                fail("unterminated entity reference");
            std::string entity = raw.substr(i + 1, semi - i - 1);
            if (entity == "amp")
                out.push_back('&');
            else if (entity == "lt")
                out.push_back('<');
            else if (entity == "gt")
                out.push_back('>');
            else if (entity == "quot")
                out.push_back('"');
            else if (entity == "apos")
                out.push_back('\'');
            else if (!entity.empty() && entity[0] == '#') {
                int code = 0;
                if (entity.size() > 1 && entity[1] == 'x')
                    code = std::stoi(entity.substr(2), nullptr, 16);
                else
                    code = std::stoi(entity.substr(1));
                out.push_back(static_cast<char>(code));
            } else {
                fail("unknown entity &" + entity + ";");
            }
            i = semi;
        }
        return out;
    }

    std::string
    parseAttrValue()
    {
        char quote = peek();
        if (quote != '"' && quote != '\'')
            fail("expected quoted attribute value");
        ++_pos;
        size_t end = _text.find(quote, _pos);
        if (end == std::string::npos)
            fail("unterminated attribute value");
        std::string raw = _text.substr(_pos, end - _pos);
        _pos = end + 1;
        return decodeEntities(raw);
    }

    std::unique_ptr<XmlNode>
    parseElement()
    {
        if (!consume("<"))
            fail("expected element start");
        auto node = std::make_unique<XmlNode>();
        node->name = parseName();
        while (true) {
            skipSpace();
            if (consume("/>"))
                return node;
            if (consume(">"))
                break;
            std::string key = parseName();
            skipSpace();
            if (!consume("="))
                fail("expected '=' after attribute name");
            skipSpace();
            node->attributes[key] = parseAttrValue();
        }
        // Content.
        while (true) {
            size_t lt = _text.find('<', _pos);
            if (lt == std::string::npos)
                fail("unterminated element <" + node->name + ">");
            node->text +=
                decodeEntities(_text.substr(_pos, lt - _pos));
            _pos = lt;
            if (consume("<!--")) {
                size_t end = _text.find("-->", _pos);
                if (end == std::string::npos)
                    fail("unterminated comment");
                _pos = end + 3;
            } else if (_text.compare(_pos, 2, "</") == 0) {
                _pos += 2;
                std::string closing = parseName();
                if (closing != node->name) {
                    fail("mismatched closing tag </" + closing +
                         "> for <" + node->name + ">");
                }
                skipSpace();
                if (!consume(">"))
                    fail("malformed closing tag");
                return node;
            } else {
                node->children.push_back(parseElement());
            }
        }
    }

    const std::string &_text;
    size_t _pos = 0;
};

void
writeNode(const XmlNode &node, std::string &out, int depth)
{
    std::string indent(static_cast<size_t>(depth) * 2, ' ');
    out += indent;
    out.push_back('<');
    out += node.name;
    for (const auto &[key, value] : node.attributes) {
        out.push_back(' ');
        out += key;
        out += "=\"";
        out += xmlEscape(value);
        out.push_back('"');
    }
    std::string_view text = trim(node.text);
    if (node.children.empty() && text.empty()) {
        out += "/>\n";
        return;
    }
    out += ">";
    if (!text.empty())
        out += xmlEscape(text);
    if (!node.children.empty()) {
        out.push_back('\n');
        for (const auto &childNode : node.children)
            writeNode(*childNode, out, depth + 1);
        out += indent;
    }
    out += "</";
    out += node.name;
    out += ">\n";
}

} // namespace

std::unique_ptr<XmlNode>
parseXml(const std::string &text)
{
    return XmlParser(text).parseDocument();
}

std::string
writeXml(const XmlNode &root)
{
    std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
    writeNode(root, out, 0);
    return out;
}

} // namespace rapid::anml
