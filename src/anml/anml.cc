#include "anml/anml.h"

#include <unordered_map>

#include "anml/xml.h"
#include "support/error.h"
#include "support/strings.h"

namespace rapid::anml {

using automata::Automaton;
using automata::CharSet;
using automata::CounterMode;
using automata::Edge;
using automata::Element;
using automata::ElementId;
using automata::ElementKind;
using automata::GateOp;
using automata::kNoElement;
using automata::Port;
using automata::StartKind;

namespace {

const char *
startName(StartKind kind)
{
    switch (kind) {
      case StartKind::None:
        return "none";
      case StartKind::AllInput:
        return "all-input";
      case StartKind::StartOfData:
        return "start-of-data";
    }
    return "none";
}

StartKind
parseStart(const std::string &name)
{
    if (name.empty() || name == "none")
        return StartKind::None;
    if (name == "all-input")
        return StartKind::AllInput;
    if (name == "start-of-data")
        return StartKind::StartOfData;
    throw CompileError("ANML: unknown start kind '" + name + "'");
}

const char *
modeName(CounterMode mode)
{
    switch (mode) {
      case CounterMode::Latch:
        return "latch";
      case CounterMode::Pulse:
        return "pulse";
      case CounterMode::Roll:
        return "roll";
    }
    return "latch";
}

CounterMode
parseMode(const std::string &name)
{
    if (name.empty() || name == "latch")
        return CounterMode::Latch;
    if (name == "pulse")
        return CounterMode::Pulse;
    if (name == "roll")
        return CounterMode::Roll;
    throw CompileError("ANML: unknown counter mode '" + name + "'");
}

/** Activation child element name appropriate for a source kind. */
const char *
activateTag(ElementKind kind)
{
    switch (kind) {
      case ElementKind::Ste:
        return "activate-on-match";
      case ElementKind::Counter:
        return "activate-on-target";
      case ElementKind::Gate:
        return "activate-on-high";
    }
    return "activate-on-match";
}

const char *
reportTag(ElementKind kind)
{
    switch (kind) {
      case ElementKind::Ste:
        return "report-on-match";
      case ElementKind::Counter:
        return "report-on-target";
      case ElementKind::Gate:
        return "report-on-high";
    }
    return "report-on-match";
}

/** Render an edge target as "id", "id:cnt", or "id:rst". */
std::string
edgeTarget(const Automaton &automaton, const Edge &edge)
{
    const std::string &id = automaton[edge.to].id;
    switch (edge.port) {
      case Port::Activate:
        return id;
      case Port::Count:
        return id + ":cnt";
      case Port::Reset:
        return id + ":rst";
    }
    return id;
}

} // namespace

std::string
emitAnml(const Automaton &automaton, const std::string &network_id)
{
    XmlNode root;
    root.name = "anml";
    root.attributes["version"] = "1.0";

    auto network = std::make_unique<XmlNode>();
    network->name = "automata-network";
    network->attributes["id"] = network_id;

    for (ElementId i = 0; i < automaton.size(); ++i) {
        const Element &element = automaton[i];
        auto node = std::make_unique<XmlNode>();
        node->attributes["id"] = element.id;
        switch (element.kind) {
          case ElementKind::Ste:
            node->name = "state-transition-element";
            node->attributes["symbol-set"] = element.symbols.str();
            if (element.start != StartKind::None)
                node->attributes["start"] = startName(element.start);
            break;
          case ElementKind::Counter:
            node->name = "counter";
            node->attributes["target"] = std::to_string(element.target);
            node->attributes["mode"] = modeName(element.mode);
            break;
          case ElementKind::Gate:
            node->name = automata::gateOpName(element.op);
            break;
        }
        if (element.report) {
            auto report = std::make_unique<XmlNode>();
            report->name = reportTag(element.kind);
            if (!element.reportCode.empty())
                report->attributes["reportcode"] = element.reportCode;
            node->children.push_back(std::move(report));
        }
        for (const Edge &edge : element.outputs) {
            auto activation = std::make_unique<XmlNode>();
            activation->name = activateTag(element.kind);
            activation->attributes["element"] =
                edgeTarget(automaton, edge);
            node->children.push_back(std::move(activation));
        }
        network->children.push_back(std::move(node));
    }

    root.children.push_back(std::move(network));
    return writeXml(root);
}

Automaton
parseAnml(const std::string &text)
{
    auto root = parseXml(text);
    const XmlNode *network = nullptr;
    if (root->name == "anml")
        network = root->child("automata-network");
    else if (root->name == "automata-network")
        network = root.get();
    if (network == nullptr)
        throw CompileError("ANML: no <automata-network> element");

    Automaton automaton;

    // Pass 1: create elements.
    for (const auto &node : network->children) {
        if (node->name == "description")
            continue;
        const std::string &id = node->attr("id");
        if (id.empty()) {
            throw CompileError("ANML: element <" + node->name +
                               "> missing id");
        }
        ElementId element = kNoElement;
        if (node->name == "state-transition-element") {
            CharSet symbols = CharSet::parse(node->attr("symbol-set"));
            element = automaton.addSte(
                symbols, parseStart(node->attr("start")), id);
        } else if (node->name == "counter") {
            const std::string &target = node->attr("target");
            if (target.empty())
                throw CompileError("ANML: counter missing target");
            element = automaton.addCounter(
                static_cast<uint32_t>(std::stoul(target)),
                parseMode(node->attr("mode")), id);
        } else if (node->name == "and") {
            element = automaton.addGate(GateOp::And, id);
        } else if (node->name == "or") {
            element = automaton.addGate(GateOp::Or, id);
        } else if (node->name == "inverter" || node->name == "not") {
            element = automaton.addGate(GateOp::Not, id);
        } else if (node->name == "nand") {
            element = automaton.addGate(GateOp::Nand, id);
        } else if (node->name == "nor") {
            element = automaton.addGate(GateOp::Nor, id);
        } else if (node->name == "description") {
            continue;
        } else {
            throw CompileError("ANML: unknown element <" + node->name +
                               ">");
        }
        for (const auto &childNode : node->children) {
            if (startsWith(childNode->name, "report-on")) {
                automaton.setReport(element,
                                    childNode->attr("reportcode"));
            }
        }
    }

    // Pass 2: connections.
    for (const auto &node : network->children) {
        if (node->name == "description")
            continue;
        ElementId from = automaton.findId(node->attr("id"));
        for (const auto &childNode : node->children) {
            if (!startsWith(childNode->name, "activate-on"))
                continue;
            std::string target = childNode->attr("element");
            Port port = Port::Activate;
            if (target.size() > 4 &&
                target.compare(target.size() - 4, 4, ":cnt") == 0) {
                port = Port::Count;
                target.resize(target.size() - 4);
            } else if (target.size() > 4 &&
                       target.compare(target.size() - 4, 4, ":rst") == 0) {
                port = Port::Reset;
                target.resize(target.size() - 4);
            }
            ElementId to = automaton.findId(target);
            if (to == kNoElement) {
                throw CompileError("ANML: activation targets unknown "
                                   "element '" +
                                   target + "'");
            }
            automaton.connect(from, to, port);
        }
    }

    return automaton;
}

size_t
anmlLineCount(const Automaton &automaton)
{
    return countLines(emitAnml(automaton));
}

} // namespace rapid::anml
