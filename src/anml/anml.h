/**
 * @file
 * ANML (Automata Network Markup Language) serialization.
 *
 * ANML is the XML design language consumed by the AP tool-chain; the
 * RAPID compiler of the paper emits it (§5).  This module converts
 * between Automaton values and ANML documents:
 *
 *   <anml version="1.0">
 *     <automata-network id="...">
 *       <state-transition-element id="s0" symbol-set="[ab]"
 *                                 start="all-input">
 *         <report-on-match reportcode="m"/>
 *         <activate-on-match element="s1"/>
 *       </state-transition-element>
 *       <counter id="c0" target="5" mode="latch">
 *         <activate-on-target element="s2"/>
 *       </counter>
 *       <and id="g0">...</and>
 *     </automata-network>
 *   </anml>
 *
 * Counter input ports use the AP convention of port-suffixed element
 * references: "c0:cnt" (count enable) and "c0:rst" (reset).
 */
#ifndef RAPID_ANML_ANML_H
#define RAPID_ANML_ANML_H

#include <string>

#include "automata/automaton.h"

namespace rapid::anml {

/** Serialize @p automaton as an ANML document. */
std::string emitAnml(const automata::Automaton &automaton,
                     const std::string &network_id = "network");

/**
 * Parse an ANML document into an Automaton.
 *
 * Accepts everything emitAnml() produces plus hand-written documents
 * using the same element vocabulary.  @throws rapid::CompileError on
 * malformed documents or dangling element references.
 */
automata::Automaton parseAnml(const std::string &text);

/** Line count of a serialized design (the paper's "ANML LOC" metric). */
size_t anmlLineCount(const automata::Automaton &automaton);

} // namespace rapid::anml

#endif // RAPID_ANML_ANML_H
