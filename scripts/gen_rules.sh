#!/usr/bin/env sh
# Emit the standard synthetic rule-set corpora (docs/rules.md) into a
# directory: every style at the 100/1k/5k-rule tiers, seeded so the
# files are byte-identical on every machine.
# Usage: scripts/gen_rules.sh [outdir] [seed]
set -e
cd "$(dirname "$0")/.."
OUT="${1:-rules_corpora}"
SEED="${2:-7}"
cmake -B build
cmake --build build --target rapid-gen-rules
GEN=build/src/tools/rapid-gen-rules
mkdir -p "$OUT"
for style in snort clamav dict pii mixed; do
    for count in 100 1000 5000; do
        "$GEN" --style="$style" --count="$count" --seed="$SEED" \
            -o "$OUT/${style}_${count}.rules"
    done
done
echo "corpora in $OUT:"
ls -l "$OUT"
