#!/usr/bin/env bash
# Regenerate the golden report streams under tests/conformance/golden/
# from the scalar reference engine.  Run after an intentional
# behaviour change, then review the diff before committing.
#
# Usage: scripts/update_goldens.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
RAPIDC="$BUILD/src/tools/rapidc"
EXAMPLES="$BUILD/examples"
GOLDEN="$ROOT/tests/conformance/golden"

[ -x "$RAPIDC" ] || {
    echo "error: $RAPIDC not built (run cmake --build $BUILD)" >&2
    exit 1
}
mkdir -p "$GOLDEN"

# Lines with wall-clock timings vary run to run; the conformance
# runner filters them the same way (normalize() — keep in sync).
filter() { grep -v 'tuned in' || true; }

workload() { # name frame-flag...
    local name="$1"; shift
    "$RAPIDC" run --engine=scalar "$ROOT/workloads/$name.rapid" \
        --args "$ROOT/workloads/$name.args" \
        --input "$ROOT/tests/conformance/inputs/$name.input" "$@" \
        2>/dev/null | filter > "$GOLDEN/workload_$name.golden"
    echo "workload_$name.golden: $(wc -l < "$GOLDEN/workload_$name.golden") line(s)"
    # Cross-verify before committing: every other engine must already
    # reproduce the fresh scalar golden byte for byte.  A diff here
    # means the behaviour change is engine-specific — a bug, not a
    # golden refresh.
    local engine
    for engine in batch sharded parallel "parallel --threads=3"; do
        # shellcheck disable=SC2086 # engine may carry extra flags
        "$RAPIDC" run --engine=$engine "$ROOT/workloads/$name.rapid" \
            --args "$ROOT/workloads/$name.args" \
            --input "$ROOT/tests/conformance/inputs/$name.input" "$@" \
            2>/dev/null | filter \
            | diff -u "$GOLDEN/workload_$name.golden" - || {
            echo "error: --engine=$engine diverges from scalar on $name" >&2
            exit 1
        }
    done
}

example() { # name
    local name="$1"
    RAPID_ENGINE=scalar "$EXAMPLES/$name" 2>/dev/null \
        | filter > "$GOLDEN/example_$name.golden"
    echo "example_$name.golden: $(wc -l < "$GOLDEN/example_$name.golden") line(s)"
}

workload exact_dna
workload hamming --frame
workload motif_scan

example quickstart
example spam_filter
example motif_search
example packet_inspection
example fuzzy_dictionary

# Serve cross-verify: replay every fresh workload golden through a
# live rapidd session (odd chunk size, so FEED boundaries never align
# with record boundaries).  A diff means the streaming service
# diverges from the one-shot CLI — a bug, not a golden refresh.
RAPIDD="$BUILD/src/tools/rapidd"
if [ -x "$RAPIDD" ]; then
    tmp=$(mktemp -d)
    trap 'kill "${rapidd_pid:-}" 2>/dev/null; rm -rf "$tmp"' EXIT
    for name in exact_dna hamming motif_scan; do
        "$RAPIDC" build "$ROOT/workloads/$name.rapid" \
            --args "$ROOT/workloads/$name.args" \
            -o "$tmp/$name.apimg" > /dev/null 2>&1
    done
    RAPID_PORT_FILE="$tmp/port" RAPID_FLIGHTLOG=off "$RAPIDD" \
        --image=exact_dna="$tmp/exact_dna.apimg" \
        --image=hamming="$tmp/hamming.apimg" \
        --image=motif_scan="$tmp/motif_scan.apimg" \
        --listen=0 > /dev/null 2>&1 &
    rapidd_pid=$!
    for _ in $(seq 1 100); do
        [ -s "$tmp/port" ] && break
        sleep 0.1
    done
    serve_check() { # name frame-flag...
        local name="$1"; shift
        "$RAPIDD" client --port-file="$tmp/port" --name="$name" \
            --chunk=997 \
            --input="$ROOT/tests/conformance/inputs/$name.input" \
            "$@" 2>/dev/null | filter \
            | diff -u "$GOLDEN/workload_$name.golden" - || {
            echo "error: rapidd serve diverges from scalar on $name" >&2
            exit 1
        }
    }
    serve_check exact_dna
    serve_check hamming --frame
    serve_check motif_scan
    echo "serve cross-verify: rapidd reproduces all workload goldens"
else
    echo "warning: $RAPIDD not built; skipping serve cross-verify" >&2
fi

echo "goldens written to $GOLDEN"
