#!/usr/bin/env sh
# Nightly differential-fuzzing sweep.
#
# Builds rapidfuzz with sanitizers enabled and runs it under a wall-
# clock budget with a date-derived seed, so each night explores a new
# region of the program space while any given night remains exactly
# reproducible from its date:
#
#   rapidfuzz --seed $(date -u +%Y%m%d) --seconds <budget>
#
# Usage: scripts/fuzz_nightly.sh [minutes] [extra rapidfuzz args...]
#   minutes   wall-clock budget (default 10)
#
# Exit status: non-zero when a divergence is found (the shrunken repro
# is written to the build directory and printed) or the build fails.
set -e
cd "$(dirname "$0")/.."

MINUTES="${1:-10}"
[ $# -gt 0 ] && shift

SEED="${RAPID_FUZZ_SEED:-$(date -u +%Y%m%d)}"
BUILD_DIR="build-fuzz-nightly"

cmake -B "$BUILD_DIR" -DRAPID_ENABLE_SANITIZERS=ON
cmake --build "$BUILD_DIR" --target rapidfuzz -j

echo "== fuzz_nightly: seed $SEED, budget ${MINUTES}m =="
"$BUILD_DIR/src/tools/rapidfuzz" \
    --seed "$SEED" \
    --iterations 100000000 \
    --seconds "$((MINUTES * 60))" \
    --repro-dir "$BUILD_DIR" \
    "$@"
