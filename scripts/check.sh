#!/usr/bin/env sh
# Full verification sweep: configure, build, test, and run every bench.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/bench_*; do
    echo "== $b"
    "$b"
done
