#!/usr/bin/env sh
# Full verification sweep: configure, build, test, and run every bench.
set -e
cd "$(dirname "$0")/.."
cmake -B build
cmake --build build
ctest --test-dir build --output-on-failure
# Telemetry end-to-end: rapidc --stats/--trace must emit valid JSON.
ctest --test-dir build --output-on-failure -L obs_smoke
# Golden conformance: every engine reproduces the checked-in report
# streams for all workloads and examples.
ctest --test-dir build --output-on-failure -L conformance
# Differential fuzzing: a divergence writes a fuzz_repro_*.rapidfuzz
# file (path printed in the failure output; replay with
# `rapidfuzz --repro <file>`).
if ! ctest --test-dir build --output-on-failure -R fuzz; then
    echo "fuzz sweep failed; repro files (replay with rapidfuzz --repro):" >&2
    find build -name 'fuzz_repro_*.rapidfuzz' >&2
    exit 1
fi
for b in build/bench/bench_*; do
    echo "== $b"
    "$b"
done
