#!/usr/bin/env sh
# Full verification sweep: configure, build, test, and run every bench.
set -e
cd "$(dirname "$0")/.."
cmake -B build
cmake --build build
ctest --test-dir build --output-on-failure
# Telemetry end-to-end: rapidc --stats/--trace must emit valid JSON.
ctest --test-dir build --output-on-failure -L obs_smoke
for b in build/bench/bench_*; do
    echo "== $b"
    "$b"
done
