#!/usr/bin/env sh
# Full verification sweep: configure, build, test, and run every bench.
#
# Configure/build failures abort immediately (nothing later could
# run); every subsequent stage always runs, and the script exits
# non-zero when ANY stage failed — a passing late stage can never mask
# an earlier failure.
set -u
cd "$(dirname "$0")/.."

cmake -B build || exit 1
cmake --build build -j || exit 1

status=0

run_stage() {
    echo "== $*"
    if ! "$@"; then
        echo "check.sh: stage failed: $*" >&2
        status=1
    fi
}

run_stage ctest --test-dir build --output-on-failure
# Telemetry end-to-end: rapidc --stats/--trace must emit valid JSON.
run_stage ctest --test-dir build --output-on-failure -L obs_smoke
# Observability plane: Prometheus exporter, metrics endpoint,
# flight recorder, and the bench-diff watchdog.
run_stage ctest --test-dir build --output-on-failure -L obs_export

# Live-scrape smoke: hold a real `rapidc run --listen` open and curl
# /metrics and /healthz off it, like a Prometheus instance would.
# Needs curl; the ctest suite above covers the same surface in-process.
live_scrape() {
    port_file=$(mktemp)
    input_file=$(mktemp)
    python3 -c "print('ACGTTGCAACGT' * 50000, end='')" \
        > "$input_file" 2>/dev/null ||
        awk 'BEGIN { for (i = 0; i < 50000; i++) printf "ACGTTGCAACGT" }' \
            > "$input_file"
    RAPID_PORT_FILE="$port_file" RAPID_LISTEN_LINGER_MS=10000 \
        RAPID_FLIGHTLOG=off \
        build/src/tools/rapidc run workloads/exact_dna.rapid \
        --args workloads/exact_dna.args --input "$input_file" \
        --engine=batch --listen=0 > /dev/null 2>&1 &
    rapidc_pid=$!
    port=""
    tries=0
    while [ $tries -lt 100 ]; do
        port=$(cat "$port_file" 2>/dev/null)
        [ -n "$port" ] && break
        tries=$((tries + 1))
        sleep 0.1
    done
    ok=0
    if [ -n "$port" ] &&
        [ "$(curl -fsS "http://127.0.0.1:$port/healthz")" = "ok" ] &&
        curl -fsS "http://127.0.0.1:$port/metrics" |
            grep -q '^rapid_sim_cycles_total '; then
        ok=1
    fi
    kill "$rapidc_pid" 2>/dev/null
    wait "$rapidc_pid" 2>/dev/null
    rm -f "$port_file" "$input_file"
    [ "$ok" = 1 ]
}
if command -v curl > /dev/null 2>&1; then
    run_stage live_scrape
else
    echo "check.sh: curl not found; skipping live /metrics scrape"
fi
# Streaming match service: client parity, protocol robustness, soak,
# hot reload, and the daemon lifecycle (tests/serve, label `serve`).
run_stage ctest --test-dir build --output-on-failure -L serve

# Daemon end-to-end: boot rapidd on a prebuilt image, stream one full
# client session against the exact_dna golden, scrape /metrics off
# the same port, then SIGTERM — clean shutdown is exit 143 (128+15)
# plus exactly one flight-recorder line with command "serve".
rapidd_stage() {
    tmp=$(mktemp -d)
    build/src/tools/rapidc build workloads/exact_dna.rapid \
        --args workloads/exact_dna.args -o "$tmp/dna.apimg" \
        > /dev/null 2>&1 || { rm -rf "$tmp"; return 1; }
    RAPID_PORT_FILE="$tmp/port" RAPID_FLIGHTLOG="$tmp/flight.jsonl" \
        build/src/tools/rapidd --image=dna="$tmp/dna.apimg" \
        --listen=0 > /dev/null 2>&1 &
    rapidd_pid=$!
    port=""
    tries=0
    while [ $tries -lt 100 ]; do
        port=$(cat "$tmp/port" 2>/dev/null)
        [ -n "$port" ] && break
        tries=$((tries + 1))
        sleep 0.1
    done
    ok=1
    [ -n "$port" ] || ok=0
    build/src/tools/rapidd client --port-file="$tmp/port" --name=dna \
        --chunk=997 --input=tests/conformance/inputs/exact_dna.input \
        2> /dev/null \
        | diff -q tests/conformance/golden/workload_exact_dna.golden - \
            > /dev/null || {
        echo "check.sh: rapidd session diverges from the golden" >&2
        ok=0
    }
    if command -v curl > /dev/null 2>&1; then
        curl -fsS "http://127.0.0.1:$port/metrics" 2> /dev/null |
            grep -q '^rapid_serve_sessions_opened_total ' || {
            echo "check.sh: no serve.* counters on the shared port" >&2
            ok=0
        }
    fi
    kill -TERM "$rapidd_pid" 2> /dev/null
    wait "$rapidd_pid"
    code=$?
    [ "$code" = 143 ] || {
        echo "check.sh: rapidd exited $code on SIGTERM, want 143" >&2
        ok=0
    }
    [ "$(grep -c '"command":"serve"' "$tmp/flight.jsonl" \
        2> /dev/null)" = 1 ] || {
        echo "check.sh: expected exactly one serve flight-log line" >&2
        ok=0
    }
    rm -rf "$tmp"
    [ "$ok" = 1 ]
}
run_stage rapidd_stage

# Rule-set compiler: parser/report-code contract, per-rule
# attribution, cache behavior on rule images, and the bounded regex
# differential oracle (tests/rules + fuzz_regex_test, label `rules`).
run_stage ctest --test-dir build --output-on-failure -L rules

# Rule-set CLI end-to-end: generate a seeded corpus with planted
# witnesses, compile it through `rapidc compile-rules`, replay the
# stream on every engine, and check byte parity plus ground-truth
# attribution from the generator's TSV.
rules_cli_stage() {
    tmp=$(mktemp -d)
    build/src/tools/rapid-gen-rules --style=mixed --count=200 \
        --seed=7 -o "$tmp/rules.txt" --input-bytes=65536 --plants=50 \
        --input-out="$tmp/input.bin" \
        --expected-out="$tmp/expected.tsv" ||
        { rm -rf "$tmp"; return 1; }
    build/src/tools/rapidc compile-rules "$tmp/rules.txt" \
        -o "$tmp/rules.apimg" > /dev/null ||
        { rm -rf "$tmp"; return 1; }
    ok=1
    build/src/tools/rapidc run --image="$tmp/rules.apimg" \
        --input "$tmp/input.bin" --engine=scalar \
        > "$tmp/scalar.out" 2> /dev/null || ok=0
    for engine in batch sharded parallel; do
        build/src/tools/rapidc run --image="$tmp/rules.apimg" \
            --input "$tmp/input.bin" --engine="$engine" 2> /dev/null |
            diff -q "$tmp/scalar.out" - > /dev/null || {
            echo "check.sh: $engine diverges on the rule image" >&2
            ok=0
        }
    done
    awk -F'\t' 'NR == FNR { want[$1 "\t" $2] = 1; next }
                ($1 "\t" $2) in want { delete want[$1 "\t" $2] }
                END {
                    bad = 0
                    for (k in want) { print "unattributed: " k; bad = 1 }
                    exit bad
                }' "$tmp/expected.tsv" "$tmp/scalar.out" || {
        echo "check.sh: planted rule matches missing from the" \
             "report stream" >&2
        ok=0
    }
    rm -rf "$tmp"
    [ "$ok" = 1 ]
}
run_stage rules_cli_stage

# Golden conformance: every engine reproduces the checked-in report
# streams for all workloads and examples, including the .apimg image
# path.
run_stage ctest --test-dir build --output-on-failure -L conformance
# Differential fuzzing: a divergence writes a fuzz_repro_*.rapidfuzz
# file (path printed in the failure output; replay with
# `rapidfuzz --repro <file>`).
if ! ctest --test-dir build --output-on-failure -L fuzz; then
    echo "fuzz sweep failed; repro files (replay with rapidfuzz --repro):" >&2
    find build -name 'fuzz_repro_*.rapidfuzz' >&2
    status=1
fi
for b in build/bench/bench_*; do
    run_stage "$b"
done

# Optimizer regression gate: the graph-reduction pipeline shipped as a
# no-op once (every optimize.* counter zero on every workload); fail
# loudly if it regresses to that state.  The bench writes one JSON
# object per workload on a single line — grep that line and check its
# "rewrites" field.
opt_gate() {
    workload="$1"
    line=$(grep "\"$workload\":" BENCH_throughput.json)
    if [ -z "$line" ]; then
        echo "check.sh: no optimizer record for $workload in" \
             "BENCH_throughput.json" >&2
        return 1
    fi
    case "$line" in
    *'"rewrites": 0'*)
        echo "check.sh: optimizer applied zero rewrites on" \
             "$workload — the reduction pipeline is dead again" >&2
        return 1
        ;;
    esac
    return 0
}
run_stage opt_gate exact_dna_tessellated
run_stage opt_gate motif_scan

exit "$status"
