#!/usr/bin/env sh
# Full verification sweep: configure, build, test, and run every bench.
#
# Configure/build failures abort immediately (nothing later could
# run); every subsequent stage always runs, and the script exits
# non-zero when ANY stage failed — a passing late stage can never mask
# an earlier failure.
set -u
cd "$(dirname "$0")/.."

cmake -B build || exit 1
cmake --build build -j || exit 1

status=0

run_stage() {
    echo "== $*"
    if ! "$@"; then
        echo "check.sh: stage failed: $*" >&2
        status=1
    fi
}

run_stage ctest --test-dir build --output-on-failure
# Telemetry end-to-end: rapidc --stats/--trace must emit valid JSON.
run_stage ctest --test-dir build --output-on-failure -L obs_smoke
# Golden conformance: every engine reproduces the checked-in report
# streams for all workloads and examples, including the .apimg image
# path.
run_stage ctest --test-dir build --output-on-failure -L conformance
# Differential fuzzing: a divergence writes a fuzz_repro_*.rapidfuzz
# file (path printed in the failure output; replay with
# `rapidfuzz --repro <file>`).
if ! ctest --test-dir build --output-on-failure -L fuzz; then
    echo "fuzz sweep failed; repro files (replay with rapidfuzz --repro):" >&2
    find build -name 'fuzz_repro_*.rapidfuzz' >&2
    status=1
fi
for b in build/bench/bench_*; do
    run_stage "$b"
done

exit "$status"
