#!/usr/bin/env sh
# Build and run the streaming-throughput bench (scalar vs. batch
# engine).  Usage: scripts/bench_throughput.sh [scale]
#   scale   RAPID_BENCH_SCALE value; defaults to the smoke scale used
#           by the `bench_smoke` ctest label.  Use 1.0 for full size.
#
# Exits with the bench binary's status on failure; on success prints
# the absolute path of the JSON artifact (which carries a "metrics"
# section fed by the telemetry registry).
set -e
cd "$(dirname "$0")/.."
SCALE="${1:-0.005}"
# Reuse whatever generator the build directory was configured with.
cmake -B build
cmake --build build --target bench_throughput
echo "== bench_throughput (RAPID_BENCH_SCALE=$SCALE)"
cd build
if ! RAPID_BENCH_SCALE="$SCALE" ./bench/bench_throughput; then
    status=$?
    echo "bench_throughput failed (exit $status)" >&2
    exit $status
fi
echo "== BENCH_throughput.json"
cat BENCH_throughput.json
echo "results: $(pwd)/BENCH_throughput.json"
