#!/usr/bin/env sh
# Build and run the streaming-throughput bench (scalar vs. batch
# engine).  Usage: scripts/bench_throughput.sh [scale]
#   scale   RAPID_BENCH_SCALE value; defaults to the smoke scale used
#           by the `bench_smoke` ctest label.  Use 1.0 for full size.
set -e
cd "$(dirname "$0")/.."
SCALE="${1:-0.005}"
cmake -B build -G Ninja
cmake --build build --target bench_throughput
echo "== bench_throughput (RAPID_BENCH_SCALE=$SCALE)"
cd build
RAPID_BENCH_SCALE="$SCALE" ./bench/bench_throughput
echo "== BENCH_throughput.json"
cat BENCH_throughput.json
