#!/usr/bin/env sh
# Build and run the large-scale rule-set bench (compile time, blocks,
# and per-engine MB/s across 100/1k/5k-rule tiers).
# Usage: scripts/bench_rules.sh [scale]
#   scale   RAPID_BENCH_SCALE value; defaults to the smoke scale (only
#           the 100-rule tier).  Use 1.0 for the full tier trajectory —
#           the checked-in BENCH_rules.json baseline is recorded at 1.0.
#
# Exits with the bench binary's status on failure; on success prints
# the absolute path of the JSON artifact (gated in nightly CI by
# rapid-bench-diff against the checked-in baseline).
set -e
cd "$(dirname "$0")/.."
SCALE="${1:-0.005}"
# Reuse whatever generator the build directory was configured with.
cmake -B build
cmake --build build --target bench_rules
echo "== bench_rules (RAPID_BENCH_SCALE=$SCALE)"
cd build
if ! RAPID_BENCH_SCALE="$SCALE" ./bench/bench_rules; then
    status=$?
    echo "bench_rules failed (exit $status)" >&2
    exit $status
fi
echo "== BENCH_rules.json"
cat BENCH_rules.json
echo "results: $(pwd)/BENCH_rules.json"
